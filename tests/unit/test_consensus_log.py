"""Unit tests for the ordering log and quorum tracker."""

import pytest

from repro.common.errors import ConsensusError
from repro.consensus.base import QuorumTracker
from repro.consensus.log import EntryStatus, Noop, OrderingLog, item_digest

from helpers import simple_transfer


class TestQuorumTracker:
    def test_fires_once_at_threshold(self):
        tracker = QuorumTracker(2)
        assert not tracker.vote("k", 1)
        assert tracker.vote("k", 2)
        assert not tracker.vote("k", 3)
        assert tracker.reached("k")
        assert tracker.count("k") == 2

    def test_duplicate_votes_ignored(self):
        tracker = QuorumTracker(2)
        assert not tracker.vote("k", 1)
        assert not tracker.vote("k", 1)
        assert tracker.count("k") == 1

    def test_keys_are_independent(self):
        tracker = QuorumTracker(1)
        assert tracker.vote("a", 1)
        assert tracker.vote("b", 1)
        assert tracker.voters("a") == frozenset({1})

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            QuorumTracker(0)

    def test_clear(self):
        tracker = QuorumTracker(1)
        tracker.vote("a", 1)
        tracker.clear()
        assert not tracker.reached("a")


class TestItemDigest:
    def test_transaction_digest_matches_payload_digest(self):
        tx = simple_transfer()
        assert item_digest(tx) == tx.payload_digest()

    def test_noop_digest_is_stable(self):
        assert item_digest(Noop("x")) == item_digest(Noop("x"))
        assert item_digest(Noop("x")) != item_digest(Noop("y"))


class TestOrderingLog:
    def test_allocation_is_sequential(self):
        log = OrderingLog(0)
        assert log.allocate() == 1
        assert log.allocate() == 2
        log.observe(10)
        assert log.allocate() == 11

    def test_pending_then_decide_then_apply(self):
        log = OrderingLog(0)
        tx = simple_transfer()
        digest = item_digest(tx)
        log.record_pending(1, digest, tx)
        assert log.pop_applicable() == []
        log.decide(1, digest, tx)
        [entry] = log.pop_applicable()
        assert entry.slot == 1 and entry.status is EntryStatus.APPLIED
        assert log.decided_slot_of(digest) == 1
        assert log.is_applied(1)

    def test_apply_strictly_in_order(self):
        log = OrderingLog(0)
        tx1, tx2 = simple_transfer(1, 2), simple_transfer(3, 4)
        log.decide(2, item_digest(tx2), tx2)
        assert log.pop_applicable() == []
        log.decide(1, item_digest(tx1), tx1)
        entries = log.pop_applicable()
        assert [entry.slot for entry in entries] == [1, 2]

    def test_conflicting_pending_digest_rejected(self):
        log = OrderingLog(0)
        tx1, tx2 = simple_transfer(1, 2), simple_transfer(3, 4)
        log.record_pending(1, item_digest(tx1), tx1)
        with pytest.raises(ConsensusError):
            log.record_pending(1, item_digest(tx2), tx2)
        # Same digest is idempotent.
        log.record_pending(1, item_digest(tx1), tx1)

    def test_decide_overrides_pending_conflict(self):
        log = OrderingLog(0)
        tx1, tx2 = simple_transfer(1, 2), simple_transfer(3, 4)
        log.record_pending(1, item_digest(tx1), tx1)
        entry = log.decide(1, item_digest(tx2), tx2)
        assert entry.digest == item_digest(tx2)

    def test_conflicting_decides_raise(self):
        log = OrderingLog(0)
        tx1, tx2 = simple_transfer(1, 2), simple_transfer(3, 4)
        log.decide(1, item_digest(tx1), tx1)
        with pytest.raises(ConsensusError):
            log.decide(1, item_digest(tx2), tx2)
        # Re-deciding the same digest is idempotent.
        log.decide(1, item_digest(tx1), tx1)

    def test_positions_default_to_own_cluster(self):
        log = OrderingLog(3)
        tx = simple_transfer()
        entry = log.decide(5, item_digest(tx), tx)
        assert entry.positions == {3: 5}

    def test_cross_positions_preserved(self):
        log = OrderingLog(0)
        tx = simple_transfer()
        entry = log.decide(1, item_digest(tx), tx, positions={0: 1, 2: 9}, proposer=0)
        assert entry.positions == {0: 1, 2: 9}

    def test_summaries(self):
        log = OrderingLog(0)
        tx1, tx2 = simple_transfer(1, 2), simple_transfer(3, 4)
        log.record_pending(1, item_digest(tx1), tx1)
        log.decide(2, item_digest(tx2), tx2)
        assert log.undecided_slots() == [1]
        assert [slot for slot, _ in log.decided_summary()] == [2]
        assert [slot for slot, _, _ in log.pending_summary()] == [1]
