"""Unit tests for the measurement utilities."""

import pytest

from repro.common.metrics import LatencySample, MetricsCollector, summarize_latencies


class TestLatencySample:
    def test_latency(self):
        sample = LatencySample("tx", submitted_at=1.0, committed_at=1.25)
        assert sample.latency == pytest.approx(0.25)


class TestSummaries:
    def test_empty(self):
        summary = summarize_latencies([])
        assert summary["mean"] == 0.0 and summary["p99"] == 0.0

    def test_percentiles(self):
        values = [i / 100 for i in range(1, 101)]
        summary = summarize_latencies(values)
        assert summary["mean"] == pytest.approx(0.505)
        assert summary["p50"] == pytest.approx(0.50)
        assert summary["p95"] == pytest.approx(0.95)
        assert summary["max"] == pytest.approx(1.0)


class TestMetricsCollector:
    def test_throughput_over_steady_window(self):
        collector = MetricsCollector(warmup=1.0, measure_until=3.0)
        # 10 transactions submitted inside the window, 5 outside.
        for index in range(10):
            collector.record_commit(f"in-{index}", submitted_at=1.5, committed_at=1.6)
        for index in range(5):
            collector.record_commit(f"out-{index}", submitted_at=0.5, committed_at=0.6)
        stats = collector.finalize(end_time=10.0)
        assert stats.committed == 10
        assert stats.throughput == pytest.approx(10 / 2.0)
        assert stats.avg_latency == pytest.approx(0.1)

    def test_cross_and_intra_latency_split(self):
        collector = MetricsCollector()
        collector.record_commit("a", 0.0, 0.1, cross_shard=False)
        collector.record_commit("b", 0.0, 0.3, cross_shard=True)
        stats = collector.finalize(end_time=1.0)
        assert stats.avg_latency_intra == pytest.approx(0.1)
        assert stats.avg_latency_cross == pytest.approx(0.3)
        assert stats.committed_cross == 1

    def test_aborts_and_submissions_counted(self):
        collector = MetricsCollector()
        collector.record_submission()
        collector.record_submission()
        collector.record_abort()
        stats = collector.finalize(end_time=1.0)
        assert collector.submitted == 2
        assert stats.aborted == 1

    def test_as_dict_units(self):
        collector = MetricsCollector()
        collector.record_commit("a", 0.0, 0.050)
        stats = collector.finalize(end_time=1.0)
        row = stats.as_dict()
        assert row["avg_latency_ms"] == pytest.approx(50.0)
        assert row["throughput_tps"] == stats.throughput
