"""Unit tests for the measurement utilities."""

import pytest

from repro.common.metrics import (
    LatencySample,
    MetricsCollector,
    RunStats,
    summarize_latencies,
)


class TestLatencySample:
    def test_latency(self):
        sample = LatencySample("tx", submitted_at=1.0, committed_at=1.25)
        assert sample.latency == pytest.approx(0.25)


class TestSummaries:
    def test_empty(self):
        summary = summarize_latencies([])
        assert summary["mean"] == 0.0 and summary["p99"] == 0.0

    def test_percentiles(self):
        values = [i / 100 for i in range(1, 101)]
        summary = summarize_latencies(values)
        assert summary["mean"] == pytest.approx(0.505)
        assert summary["p50"] == pytest.approx(0.50)
        assert summary["p95"] == pytest.approx(0.95)
        assert summary["max"] == pytest.approx(1.0)


class TestMetricsCollector:
    def test_throughput_over_steady_window(self):
        collector = MetricsCollector(warmup=1.0, measure_until=3.0)
        # 10 transactions submitted inside the window, 5 outside.
        for index in range(10):
            collector.record_commit(f"in-{index}", submitted_at=1.5, committed_at=1.6)
        for index in range(5):
            collector.record_commit(f"out-{index}", submitted_at=0.5, committed_at=0.6)
        stats = collector.finalize(end_time=10.0)
        assert stats.committed == 10
        assert stats.throughput == pytest.approx(10 / 2.0)
        assert stats.avg_latency == pytest.approx(0.1)

    def test_cross_and_intra_latency_split(self):
        collector = MetricsCollector()
        collector.record_commit("a", 0.0, 0.1, cross_shard=False)
        collector.record_commit("b", 0.0, 0.3, cross_shard=True)
        stats = collector.finalize(end_time=1.0)
        assert stats.avg_latency_intra == pytest.approx(0.1)
        assert stats.avg_latency_cross == pytest.approx(0.3)
        assert stats.committed_cross == 1

    def test_aborts_and_submissions_counted(self):
        collector = MetricsCollector()
        collector.record_submission()
        collector.record_submission()
        collector.record_abort()
        stats = collector.finalize(end_time=1.0)
        assert collector.submitted == 2
        assert stats.aborted == 1

    def test_as_dict_units(self):
        collector = MetricsCollector()
        collector.record_commit("a", 0.0, 0.050)
        stats = collector.finalize(end_time=1.0)
        row = stats.as_dict()
        assert row["avg_latency_ms"] == pytest.approx(50.0)
        assert row["throughput_tps"] == stats.throughput

    def test_submitted_surfaces_as_offered_load(self):
        collector = MetricsCollector()
        for _ in range(4):
            collector.record_submission()
        collector.record_commit("a", 0.0, 0.1)
        collector.record_abort()
        stats = collector.finalize(end_time=1.0)
        assert stats.submitted == 4
        row = stats.as_dict()
        assert row["submitted"] == 4
        assert row["abort_rate"] == pytest.approx(0.25)
        # The new columns are appended at the end; the legacy prefix is
        # byte-stable for BENCH_* consumers keyed on column order.
        assert list(row)[-2:] == ["submitted", "abort_rate"]

    def test_abort_rate_zero_without_submissions(self):
        stats = MetricsCollector().finalize(end_time=1.0)
        assert stats.abort_rate == 0.0
        assert stats.as_dict()["abort_rate"] == 0.0


def make_stats(duration=1.0, committed=10, cross=0, avg=0.1, aborted=0, submitted=0):
    return RunStats(
        duration=duration,
        committed=committed,
        aborted=aborted,
        throughput=committed / duration,
        avg_latency=avg,
        p50_latency=avg,
        p95_latency=avg * 2,
        p99_latency=avg * 3,
        avg_latency_intra=avg,
        avg_latency_cross=avg * 4 if cross else 0.0,
        committed_cross=cross,
        submitted=submitted,
    )


class TestRunStatsAggregate:
    def test_single_run_is_returned_unchanged(self):
        stats = make_stats()
        assert RunStats.aggregate([stats]) is stats

    def test_zero_runs_rejected(self):
        with pytest.raises(ValueError):
            RunStats.aggregate([])

    def test_counts_sum_and_throughput_pools(self):
        pooled = RunStats.aggregate(
            [make_stats(duration=1.0, committed=10), make_stats(duration=1.0, committed=30)]
        )
        assert pooled.committed == 40
        assert pooled.duration == pytest.approx(2.0)
        assert pooled.throughput == pytest.approx(20.0)

    def test_latencies_weighted_by_committed(self):
        pooled = RunStats.aggregate(
            [
                make_stats(committed=10, avg=0.1),
                make_stats(committed=30, avg=0.2),
            ]
        )
        assert pooled.avg_latency == pytest.approx((10 * 0.1 + 30 * 0.2) / 40)

    def test_cross_shard_latency_weighted_by_cross_count(self):
        pooled = RunStats.aggregate(
            [
                make_stats(committed=10, cross=2, avg=0.1),
                make_stats(committed=10, cross=6, avg=0.3),
            ]
        )
        assert pooled.committed_cross == 8
        assert pooled.avg_latency_cross == pytest.approx((2 * 0.4 + 6 * 1.2) / 8)

    def test_submitted_and_abort_rate_pool(self):
        pooled = RunStats.aggregate(
            [
                make_stats(committed=10, aborted=1, submitted=20),
                make_stats(committed=30, aborted=3, submitted=60),
            ]
        )
        assert pooled.submitted == 80
        assert pooled.abort_rate == pytest.approx(4 / 80)
