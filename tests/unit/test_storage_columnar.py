"""Unit tests for the columnar state store (repro.storage.columnar)."""

import random

import pytest

from repro.common.errors import (
    InsufficientBalanceError,
    UnknownAccountError,
    ValidationError,
)
from repro.storage import ArrayAccountStore
from repro.storage.dict_store import AccountStore
from repro.txn.accounts import ShardMapper


def _columnar(num_shards=2, accounts_per_shard=16, strategy="range", shard=0, balance=100):
    mapper = ShardMapper(num_shards, accounts_per_shard, strategy=strategy)
    return ArrayAccountStore.bootstrap(shard, mapper, initial_balance=balance)


class TestColumnarBasics:
    def test_bootstrap_range_strategy(self):
        store = _columnar(shard=1)
        assert len(store) == 16
        assert store.total_balance() == 1600
        assert store.balance(16) == 100
        assert 15 not in store
        assert 32 not in store

    def test_bootstrap_modulo_strategy(self):
        store = _columnar(num_shards=3, accounts_per_shard=5, strategy="modulo", shard=1)
        assert sorted(account.account_id for account in store) == [1, 4, 7, 10, 13]
        assert 1 in store and 2 not in store
        assert store.balance(13) == 100

    def test_deposit_withdraw_update_columns(self):
        store = _columnar()
        store.deposit(3, 25)
        assert store.balance(3) == 125
        store.withdraw(3, 5)
        assert store.balance(3) == 120
        assert store.total_balance() == 1620

    def test_owner_enforced_and_overdraft_rejected(self):
        mapper = ShardMapper(1, 8)
        store = ArrayAccountStore.bootstrap(0, mapper, 10, owner_of=lambda a: a % 4)
        with pytest.raises(ValidationError):
            store.withdraw(5, 1, requester=0)  # owner is 5 % 4 == 1
        store.withdraw(5, 1, requester=1)
        with pytest.raises(InsufficientBalanceError):
            store.withdraw(5, 100)
        with pytest.raises(UnknownAccountError):
            store.deposit(999, 1)

    def test_off_progression_accounts_use_overflow(self):
        store = _columnar()
        store.create_account(500, owner=2, balance=7)
        assert 500 in store
        assert store.balance(500) == 7
        store.deposit(500, 3)
        store.withdraw(500, 1)
        assert store.balance(500) == 9
        assert len(store) == 17
        assert store.total_balance() == 1609
        with pytest.raises(ValidationError):
            store.create_account(500, owner=2, balance=1)

    def test_account_returns_detached_record(self):
        store = _columnar()
        record = store.account(2)
        record.balance += 1_000_000
        assert store.balance(2) == 100


class TestColumnarClone:
    def test_clone_is_independent(self):
        store = _columnar()
        store.create_account(900, owner=0, balance=5)
        copy = store.clone()
        copy.deposit(0, 50)
        copy.withdraw(900, 5)
        assert store.balance(0) == 100
        assert store.balance(900) == 5
        assert copy.balance(0) == 150
        assert store.state_digest() != copy.state_digest()

    def test_clone_preserves_digest(self):
        store = _columnar()
        store.deposit(1, 9)
        digest = store.state_digest()
        store.deposit(2, 1)  # leave a pending write in flight
        copy = store.clone()
        assert copy.state_digest() == store.state_digest()
        assert copy.state_digest() == copy.naive_state_digest()
        assert digest != copy.state_digest()


class TestColumnarDigestParity:
    def test_matches_dict_backend_bit_for_bit(self):
        mapper = ShardMapper(2, 32)
        columnar = ArrayAccountStore.bootstrap(0, mapper, 50, owner_of=lambda a: a % 3)
        plain = AccountStore.bootstrap(0, mapper, 50, owner_of=lambda a: a % 3)
        assert columnar.state_digest() == plain.state_digest()
        rng = random.Random(7)
        for _ in range(300):
            account = rng.randrange(32)
            amount = rng.randint(1, 8)
            if rng.random() < 0.5 and plain.balance(account) >= amount:
                columnar.withdraw(account, amount)
                plain.withdraw(account, amount)
            else:
                columnar.deposit(account, amount)
                plain.deposit(account, amount)
        assert columnar.state_digest() == plain.state_digest()
        assert columnar.snapshot() == plain.snapshot()
        assert columnar.state_digest() == columnar.naive_state_digest()


class TestColumnarCheckpointSnapshots:
    def test_snapshot_is_lazy_until_read(self):
        store = _columnar()
        snapshot = store.checkpoint_snapshot(10)
        assert not snapshot.materialized
        store.deposit(0, 7)
        assert snapshot[0] == (0, 100)  # pre-write value at seq 10
        assert snapshot.materialized
        assert len(snapshot) == 16

    def test_snapshot_layering_oldest_preimage_wins(self):
        store = _columnar()
        early = store.checkpoint_snapshot(1)
        store.deposit(3, 10)  # epoch [1, 2): 3 -> 110
        middle = store.checkpoint_snapshot(2)
        store.deposit(3, 10)  # epoch [2, now): 3 -> 120
        store.create_account(800, owner=0, balance=1)
        assert early[3] == (3, 100)
        assert middle[3] == (3, 110)
        assert 800 not in early
        assert 800 not in middle
        assert store.balance(3) == 120

    def test_snapshot_digest_matches_store_at_checkpoint(self):
        store = _columnar()
        store.deposit(5, 5)
        digest_then = store.state_digest()
        snapshot = store.checkpoint_snapshot(4)
        store.deposit(5, 5)
        store.withdraw(6, 1)
        assert ArrayAccountStore.snapshot_digest(snapshot) == digest_then

    def test_frames_trimmed_when_no_live_snapshot_needs_them(self):
        store = _columnar()
        for seq in range(1, 8):
            store.checkpoint_snapshot(seq)
            store.deposit(seq % 16, 1)
        # No snapshot reference retained above -> the WeakSet is empty and
        # every closed frame below the newest checkpoint is released.
        assert len(store._frames) <= 1

    def test_frames_retained_for_live_snapshot(self):
        store = _columnar()
        held = store.checkpoint_snapshot(1)
        for seq in range(2, 6):
            store.deposit(0, 1)
            store.checkpoint_snapshot(seq)
        assert len(store._frames) >= 4
        assert held[0] == (0, 100)

    def test_restore_materialises_live_snapshots_first(self):
        store = _columnar()
        baseline = store.snapshot()
        snapshot = store.checkpoint_snapshot(3)
        store.deposit(0, 40)
        store.restore(baseline)
        assert snapshot.materialized
        assert snapshot[0] == (0, 100)
        assert store.balance(0) == 100
        assert store.state_digest() == store.naive_state_digest()

    def test_restore_roundtrip_via_lazy_snapshot(self):
        store = _columnar()
        store.create_account(700, owner=1, balance=3)
        snapshot = store.checkpoint_snapshot(2)
        digest = store.state_digest()
        store.deposit(700, 10)
        store.withdraw(0, 99)
        store.restore(snapshot)
        assert store.balance(700) == 3
        assert store.balance(0) == 100
        assert store.state_digest() == digest
