"""Unit tests for the simulated network (latency, FIFO, faults)."""

import pytest

from repro.common.config import PerformanceModel
from repro.common.errors import NetworkError
from repro.sim.costs import CostModel
from repro.sim.network import ClusteredLatencyModel, Network, UniformLatencyModel
from repro.sim.process import Process
from repro.sim.simulator import Simulator


class Recorder(Process):
    """Process that records every delivered message with its arrival time."""

    def __init__(self, pid, sim, network):
        super().__init__(pid, sim, network, CostModel(PerformanceModel(message_cpu=0.0)))
        self.received = []

    def on_message(self, message, src):
        self.received.append((self.sim.now, src, message))


def make_net(latency=1e-3, jitter=0.0, drop_rate=0.0, fifo=True):
    sim = Simulator(seed=3)
    network = Network(sim, UniformLatencyModel(latency, jitter, rng=sim.rng), drop_rate, fifo=fifo)
    nodes = [Recorder(pid, sim, network) for pid in range(3)]
    return sim, network, nodes


class TestDelivery:
    def test_point_to_point_delivery(self):
        sim, network, nodes = make_net()
        network.send(0, 1, "hello")
        sim.run()
        assert [(src, msg) for _, src, msg in nodes[1].received] == [(0, "hello")]

    def test_latency_applied(self):
        sim, network, nodes = make_net(latency=5e-3)
        network.send(0, 1, "x")
        sim.run()
        assert nodes[1].received[0][0] == pytest.approx(5e-3)

    def test_unknown_destination_raises(self):
        sim, network, _ = make_net()
        with pytest.raises(NetworkError):
            network.send(0, 99, "x")

    def test_multicast_excludes_self_by_default(self):
        sim, network, nodes = make_net()
        sent = network.multicast(0, [0, 1, 2], "m")
        sim.run()
        assert sent == 2
        assert not nodes[0].received
        assert nodes[1].received and nodes[2].received

    def test_fifo_preserves_per_link_order_despite_jitter(self):
        sim, network, nodes = make_net(latency=1e-3, jitter=2.0)
        for index in range(20):
            network.send(0, 1, index)
        sim.run()
        payloads = [msg for _, _, msg in nodes[1].received]
        assert payloads == list(range(20))

    def test_non_fifo_network_may_reorder(self):
        sim, network, nodes = make_net(latency=1e-3, jitter=5.0, fifo=False)
        for index in range(30):
            network.send(0, 1, index)
        sim.run()
        payloads = [msg for _, _, msg in nodes[1].received]
        assert sorted(payloads) == list(range(30))


class TestMulticast:
    """The shared-payload multicast primitive and its fault-path interaction."""

    def test_fast_path_matches_per_send_latency_and_payload(self):
        sim, network, nodes = make_net(latency=2e-3)
        payload = ("shared", "payload")
        sent = network.multicast(0, [1, 2], payload)
        sim.run()
        assert sent == 2
        for node in nodes[1:]:
            arrival, src, message = node.received[0]
            assert arrival == pytest.approx(2e-3)
            assert src == 0
            assert message is payload  # one immutable object, not a copy

    def test_multicast_consumes_rng_like_sequential_sends(self):
        """Jitter draws happen per destination in destination order."""

        def delays(use_multicast):
            sim = Simulator(seed=9)
            network = Network(sim, UniformLatencyModel(1e-3, jitter=1.0, rng=sim.rng))
            nodes = [Recorder(pid, sim, network) for pid in range(4)]
            if use_multicast:
                network.multicast(0, [1, 2, 3], "m")
            else:
                for dst in (1, 2, 3):
                    network.send(0, dst, "m")
            sim.run()
            return [node.received[0][0] for node in nodes[1:]]

        assert delays(True) == delays(False)

    def test_partition_drops_cross_group_multicast_only(self):
        sim, network, nodes = make_net()
        network.partition([[0, 1], [2]])
        sent = network.multicast(0, [1, 2], "m")
        sim.run()
        assert sent == 1
        assert [m for _, _, m in nodes[1].received] == ["m"]  # intra-partition
        assert nodes[2].received == []  # across the partition
        assert network.messages_dropped == 1

    def test_heal_restores_multicast_fast_path(self):
        sim, network, nodes = make_net()
        network.partition([[0], [1, 2]])
        assert network.multicast(0, [1, 2], "blocked") == 0
        network.heal()
        assert network.multicast(0, [1, 2], "after-heal") == 2
        sim.run()
        assert [m for _, _, m in nodes[1].received] == ["after-heal"]
        assert [m for _, _, m in nodes[2].received] == ["after-heal"]

    def test_severed_link_breaks_fast_path_per_destination(self):
        sim, network, nodes = make_net()
        network.disconnect(0, 2)
        sent = network.multicast(0, [1, 2], "m")
        sim.run()
        assert sent == 1
        assert nodes[1].received and not nodes[2].received

    def test_multicast_drop_rate_applies_per_destination(self):
        sim, network, nodes = make_net(drop_rate=0.5)
        for _ in range(100):
            network.multicast(0, [1, 2], "m")
        sim.run()
        delivered = len(nodes[1].received) + len(nodes[2].received)
        assert 0 < delivered < 200
        assert network.messages_dropped + network.messages_delivered == 200

    def test_multicast_unknown_destination_raises(self):
        sim, network, _ = make_net()
        with pytest.raises(NetworkError):
            network.multicast(0, [1, 99], "m")

    def test_multicast_preserves_fifo_per_link(self):
        sim, network, nodes = make_net(latency=1e-3, jitter=3.0)
        for index in range(20):
            network.multicast(0, [1, 2], index)
        sim.run()
        assert [m for _, _, m in nodes[1].received] == list(range(20))
        assert [m for _, _, m in nodes[2].received] == list(range(20))


class TestFaults:
    def test_drop_rate_loses_messages(self):
        sim, network, nodes = make_net(drop_rate=0.5)
        for _ in range(200):
            network.send(0, 1, "x")
        sim.run()
        assert 0 < len(nodes[1].received) < 200
        assert network.messages_dropped > 0

    def test_disconnect_and_reconnect(self):
        sim, network, nodes = make_net()
        network.disconnect(0, 1)
        network.send(0, 1, "lost")
        network.reconnect(0, 1)
        network.send(0, 1, "delivered")
        sim.run()
        assert [msg for _, _, msg in nodes[1].received] == ["delivered"]

    def test_partition_blocks_cross_group_traffic(self):
        sim, network, nodes = make_net()
        network.partition([[0], [1, 2]])
        network.send(0, 1, "blocked")
        network.send(1, 2, "ok")
        sim.run()
        assert not nodes[1].received
        assert nodes[2].received
        network.heal()
        network.send(0, 1, "after-heal")
        sim.run()
        assert [msg for _, _, msg in nodes[1].received] == ["after-heal"]

    def test_invalid_drop_rate(self):
        sim = Simulator()
        with pytest.raises(NetworkError):
            Network(sim, UniformLatencyModel(1e-3), drop_rate=1.5)


class TestJitterSemantics:
    """Jitter is a multiplicative fraction: base * (1 + U[0, jitter])."""

    def test_uniform_jitter_is_multiplicative_and_bounded(self):
        model = UniformLatencyModel(2e-3, jitter=0.5)
        for _ in range(200):
            delay = model.delay(0, 1)
            assert 2e-3 <= delay <= 3e-3  # base * [1, 1.5]

    def test_uniform_zero_jitter_is_exact(self):
        model = UniformLatencyModel(2e-3)
        assert model.delay(0, 1) == pytest.approx(2e-3)

    def test_uniform_negative_jitter_rejected(self):
        with pytest.raises(ValueError):
            UniformLatencyModel(1e-3, jitter=-0.1)

    def test_clustered_model_uses_same_convention(self):
        perf = PerformanceModel(
            intra_cluster_latency=1e-3,
            cross_cluster_latency=4e-3,
            latency_jitter=0.25,
        )
        model = ClusteredLatencyModel(perf, {0: 0, 1: 0, 2: 1})
        for _ in range(200):
            assert 1e-3 <= model.delay(0, 1) <= 1.25e-3
            assert 4e-3 <= model.delay(0, 2) <= 5e-3


class TestClusteredLatencyModel:
    def test_intra_vs_cross_vs_client(self):
        perf = PerformanceModel(
            intra_cluster_latency=1e-3,
            cross_cluster_latency=10e-3,
            client_latency=3e-3,
            latency_jitter=0.0,
        )
        model = ClusteredLatencyModel(perf, {0: 0, 1: 0, 2: 1})
        assert model.delay(0, 1) == pytest.approx(1e-3)
        assert model.delay(0, 2) == pytest.approx(10e-3)
        assert model.delay(0, 999) == pytest.approx(3e-3)

    def test_jitter_bounded(self):
        perf = PerformanceModel(intra_cluster_latency=1e-3, latency_jitter=0.5)
        model = ClusteredLatencyModel(perf, {0: 0, 1: 0})
        for _ in range(100):
            assert 1e-3 <= model.delay(0, 1) <= 1.5e-3
