"""Unit tests for digests, signatures, and hash chaining."""

import pytest

from repro.common.crypto import (
    GENESIS_HASH,
    KeyPair,
    Signature,
    chain_hash,
    digest,
    merkle_root,
    sign,
    verify,
)


class TestDigest:
    def test_deterministic(self):
        payload = {"a": 1, "b": [1, 2, 3], "c": "text"}
        assert digest(payload) == digest(dict(payload))

    def test_distinguishes_types(self):
        assert digest(1) != digest("1")
        assert digest(True) != digest(1)
        assert digest(None) != digest(0)

    def test_dict_order_does_not_matter(self):
        assert digest({"x": 1, "y": 2}) == digest({"y": 2, "x": 1})

    def test_nested_structures(self):
        assert digest([(1, 2), {"k": (3, 4)}]) == digest([(1, 2), {"k": (3, 4)}])
        assert digest([(1, 2)]) != digest([(2, 1)])

    def test_dataclasses_are_hashable_content_wise(self):
        a = Signature(signer=1, payload_digest="abc")
        b = Signature(signer=1, payload_digest="abc")
        c = Signature(signer=2, payload_digest="abc")
        assert digest(a) == digest(b)
        assert digest(a) != digest(c)

    def test_unsupported_type_raises(self):
        with pytest.raises(TypeError):
            digest(object())

    def test_chain_hash_differs_from_plain_digest(self):
        assert chain_hash("a", "b") != chain_hash("b", "a")
        assert len(chain_hash("a")) == 64


class TestSignatures:
    def test_sign_and_verify_roundtrip(self):
        keypair = KeyPair(owner=7)
        signature = sign(keypair, {"amount": 10})
        assert verify(signature, {"amount": 10})
        assert verify(signature, {"amount": 10}, expected_signer=7)

    def test_wrong_payload_fails(self):
        signature = KeyPair(owner=7).sign("payload")
        assert not verify(signature, "other payload")

    def test_wrong_signer_fails(self):
        signature = KeyPair(owner=7).sign("payload")
        assert not verify(signature, "payload", expected_signer=8)

    def test_forged_signature_never_verifies(self):
        forged = Signature(signer=7, payload_digest=digest("payload"), forged=True)
        assert not verify(forged, "payload")


class TestMerkleRoot:
    def test_empty_is_genesis_hash(self):
        assert merkle_root([]) == GENESIS_HASH

    def test_single_leaf(self):
        assert merkle_root(["x"]) == digest("x")

    def test_order_sensitivity(self):
        assert merkle_root(["a", "b"]) != merkle_root(["b", "a"])

    def test_odd_number_of_leaves(self):
        assert len(merkle_root(["a", "b", "c"])) == 64
