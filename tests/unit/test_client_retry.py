"""Unit tests for the client's rolling retry timer.

One simulator timer per client tracks every outstanding request's resend
deadline.  The regression pinned here: a deadline firing while the
client is crashed is skipped by the crash guard, and the timer must
still count as expired so that recovery re-arms it — otherwise the
client never resends anything again.
"""

from __future__ import annotations

from repro.common.config import PerformanceModel
from repro.common.metrics import MetricsCollector
from repro.core.client import CLIENT_PID_BASE, ClosedLoopClient
from repro.sim.costs import CostModel
from repro.sim.network import Network, UniformLatencyModel
from repro.sim.process import Process
from repro.sim.simulator import Simulator
from repro.txn.workload import WorkloadConfig, WorkloadGenerator


class BlackHoleReplica(Process):
    """Swallows every request without ever replying."""

    def __init__(self, sim, network, cost_model):
        super().__init__(0, sim, network, cost_model)
        self.requests = 0

    def on_message(self, message, src):
        self.requests += 1


def build_client(retry_timeout=0.5):
    sim = Simulator(seed=3)
    network = Network(sim, UniformLatencyModel(1e-3, rng=sim.rng))
    cost = CostModel(PerformanceModel(message_cpu=0.0, latency_jitter=0.0))
    replica = BlackHoleReplica(sim, network, cost)
    workload = WorkloadGenerator(WorkloadConfig(accounts_per_shard=16), num_shards=1, seed=5)
    client = ClosedLoopClient(
        pid=CLIENT_PID_BASE,
        sim=sim,
        network=network,
        cost_model=cost,
        workload=workload,
        router=lambda transaction: 0,
        metrics=MetricsCollector(),
        retry_timeout=retry_timeout,
    )
    return sim, replica, client


class TestRollingRetryTimer:
    def test_unanswered_request_is_resent_on_every_deadline(self):
        sim, replica, client = build_client(retry_timeout=0.5)
        client.start()
        sim.run(until=1.8)
        assert client.outstanding == 1
        # submitted at ~0, resent at ~0.5, ~1.0, ~1.5
        assert client.resubmissions == 3
        assert replica.requests == 4

    def test_resends_do_not_duplicate_the_rolling_timer(self):
        """Each resend re-arms inside the fire loop; the arm helper must
        cancel the previous handle so exactly one timer stays live —
        orphaned duplicates would each re-arm themselves forever and blow
        the event count up by an order of magnitude."""
        sim, replica, client = build_client(retry_timeout=0.5)
        client.start()
        sim.run(until=3.2)
        assert client.resubmissions == 6  # deadlines at 0.5s, 1.0s, ... 3.0s
        # ~2 events per message plus one timer fire per deadline.
        assert sim.processed_events < 40

    def test_deadline_fired_during_crash_does_not_wedge_the_timer(self):
        sim, replica, client = build_client(retry_timeout=0.5)
        client.start()
        sim.run(until=0.2)
        client.crash()
        sim.run(until=1.0)  # the 0.5s deadline fires while crashed: skipped
        assert client.resubmissions == 0
        client.recover()
        client._issue_next()  # next submission must re-arm the rolling timer
        assert client._retry_timer is not None and client._retry_timer.active
        sim.run(until=3.0)
        # Both the stalled request and the new one are being resent again.
        assert client.resubmissions > 0
