"""Docstring audit: every public module documents itself and its invariants.

The repo's documentation layer (``docs/``) maps the architecture; the
modules themselves must carry the contract.  This test enforces two
levels:

* every public module under ``repro`` has a substantive module
  docstring (the ``pydocstyle D100``-shaped check, without the dep);
* the subsystem packages whose correctness arguments live in prose —
  ``repro.adversary``, ``repro.recovery``, ``repro.api`` — state the
  invariants their code maintains, pinned by key phrases so a refactor
  that silently drops the contract fails here.
"""

import importlib
import pkgutil
from pathlib import Path

import pytest

import repro

SRC_ROOT = Path(repro.__file__).parent


def public_modules():
    names = ["repro"]
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if any(part.startswith("_") for part in info.name.split(".")[1:]):
            continue
        names.append(info.name)
    return sorted(names)


@pytest.mark.parametrize("name", public_modules())
def test_every_public_module_has_a_module_docstring(name):
    module = importlib.import_module(name)
    doc = module.__doc__
    assert doc and doc.strip(), f"{name} has no module docstring"
    assert len(doc.strip()) >= 60, (
        f"{name}'s module docstring is too thin to document the module "
        f"({len(doc.strip())} chars)"
    )


INVARIANT_PHRASES = {
    "repro.adversary": [
        "no fork",
        "balance conservation",
        "at-most-once",
        "quorum",  # authenticated elections: certificate quorum
    ],
    "repro.recovery": [
        "slots 1..seq",  # checkpoint digest covers exactly the applied prefix
        "f + 1",  # matching responses before trusting transferred state
    ],
    "repro.api": [
        "registry",
        "faults",
    ],
    "repro.consensus.view_change": [
        "certificate",
        "2f + 1",
    ],
    "repro.core.guard": [
        "at-most-once",
        "ownership",
        "is None",  # the faultless-path cost contract
    ],
}


@pytest.mark.parametrize("name", sorted(INVARIANT_PHRASES))
def test_subsystem_docstrings_state_their_invariants(name):
    doc = importlib.import_module(name).__doc__ or ""
    missing = [
        phrase for phrase in INVARIANT_PHRASES[name] if phrase not in doc
    ]
    assert not missing, f"{name} docstring no longer states: {missing}"


def test_recovery_checkpoint_states_the_digest_invariant():
    doc = importlib.import_module("repro.recovery.checkpoint").__doc__ or ""
    assert "1..seq" in doc or "slots 1" in doc, (
        "repro.recovery.checkpoint must document that the state digest "
        "covers exactly the applied prefix (slots 1..seq)"
    )
