"""Unit tests for blocks, per-cluster views, the DAG, and audits."""

import pytest

from repro.common.errors import ForkError, HashChainError, LedgerError, UnknownBlockError
from repro.ledger.block import Block
from repro.ledger.dag import BlockDAG
from repro.ledger.validation import audit_views, check_pairwise_cross_order
from repro.ledger.view import ClusterView
from repro.txn.transaction import Transaction


def tx(source=1, destination=2, amount=1):
    return Transaction.transfer(client=source % 8, source=source, destination=destination, amount=amount)


def intra_block(cluster, position, parent, transaction=None):
    return Block.create(
        transaction or tx(),
        positions={cluster: position},
        proposer=cluster,
        parents={cluster: parent},
    )


class TestBlock:
    def test_genesis(self):
        genesis = Block.genesis()
        assert genesis.is_genesis
        assert genesis.label() == "λ"
        assert Block.genesis().block_hash == genesis.block_hash

    def test_intra_block_properties(self):
        block = intra_block(0, 1, Block.genesis().block_hash)
        assert not block.is_cross_shard
        assert block.involved_clusters == frozenset({0})
        assert block.position_for(0) == 1
        assert block.involves(0) and not block.involves(1)

    def test_cross_block_properties(self):
        block = Block.create(tx(1, 15), positions={0: 3, 1: 7}, proposer=0)
        assert block.is_cross_shard
        assert block.involved_clusters == frozenset({0, 1})
        assert block.position_for(1) == 7
        with pytest.raises(LedgerError):
            block.position_for(2)

    def test_hash_covers_positions_and_transactions(self):
        transaction = tx()
        a = Block.create(transaction, positions={0: 1}, proposer=0)
        b = Block.create(transaction, positions={0: 2}, proposer=0)
        c = Block.create(tx(3, 4), positions={0: 1}, proposer=0)
        assert a.block_hash != b.block_hash
        assert a.block_hash != c.block_hash

    def test_hash_ignores_parent_metadata(self):
        transaction = tx()
        bare = Block.create(transaction, positions={0: 1, 1: 2}, proposer=0)
        with_parent = bare.with_parent(0, "f" * 64)
        assert bare.block_hash == with_parent.block_hash
        assert with_parent.parent_for(0) == "f" * 64

    def test_with_parent_requires_involvement(self):
        block = Block.create(tx(), positions={0: 1}, proposer=0)
        with pytest.raises(LedgerError):
            block.with_parent(3, "a" * 64)

    def test_positions_start_at_one(self):
        with pytest.raises(LedgerError):
            Block.create(tx(), positions={0: 0}, proposer=0)

    def test_noop_block(self):
        block = Block.noop(positions={0: 4}, proposer=0)
        assert block.is_noop and block.is_empty
        assert block.tx_ids == ()

    def test_transaction_accessor_requires_single_tx(self):
        block = Block.noop(positions={0: 1}, proposer=0)
        with pytest.raises(LedgerError):
            _ = block.transaction

    def test_parents_must_be_subset_of_positions(self):
        with pytest.raises(LedgerError):
            Block.create(tx(), positions={0: 1}, proposer=0, parents={1: "a" * 64})

    def test_label_uses_paper_notation(self):
        block = Block.create(tx(1, 15), positions={0: 2, 1: 2}, proposer=0)
        assert block.label() == "t[1_2,2_2]"


class TestClusterView:
    def test_append_chain(self):
        view = ClusterView(0)
        first = intra_block(0, 1, view.head_hash)
        view.append(first)
        second = intra_block(0, 2, view.head_hash)
        view.append(second)
        assert view.height == 2
        assert view.head is second
        assert view.contains_tx(first.tx_ids[0])
        assert view.position_of_tx(second.tx_ids[0]) == 2
        view.verify()

    def test_wrong_position_rejected(self):
        view = ClusterView(0)
        with pytest.raises(ForkError):
            view.append(intra_block(0, 2, view.head_hash))

    def test_wrong_parent_rejected(self):
        view = ClusterView(0)
        with pytest.raises(HashChainError):
            view.append(intra_block(0, 1, "0" * 64))

    def test_duplicate_transaction_rejected(self):
        view = ClusterView(0)
        transaction = tx()
        view.append(intra_block(0, 1, view.head_hash, transaction))
        with pytest.raises(ForkError):
            view.append(intra_block(0, 2, view.head_hash, transaction))

    def test_block_for_other_cluster_rejected(self):
        view = ClusterView(0)
        foreign = Block.create(tx(15, 16), positions={1: 1}, proposer=1, parents={1: view.head_hash})
        with pytest.raises(LedgerError):
            view.append(foreign)

    def test_lookup_errors(self):
        view = ClusterView(0)
        with pytest.raises(UnknownBlockError):
            view.block_at(5)
        with pytest.raises(UnknownBlockError):
            view.block_by_hash("a" * 64)
        with pytest.raises(UnknownBlockError):
            view.position_of_tx("missing")

    def test_cross_shard_blocks_listing(self):
        view = ClusterView(0)
        view.append(intra_block(0, 1, view.head_hash))
        cross = Block.create(tx(1, 15), positions={0: 2, 1: 5}, proposer=0, parents={0: view.head_hash})
        view.append(cross)
        assert view.cross_shard_blocks() == [cross]


def build_two_cluster_views():
    """Two views sharing one cross-shard block, mirroring Figure 2."""
    view0, view1 = ClusterView(0), ClusterView(1)
    view0.append(intra_block(0, 1, view0.head_hash, tx(1, 2)))
    view1.append(intra_block(1, 1, view1.head_hash, tx(15, 16)))
    cross = Block.create(tx(3, 17), positions={0: 2, 1: 2}, proposer=0)
    view0.append(cross.with_parent(0, view0.head_hash))
    view1.append(cross.with_parent(1, view1.head_hash))
    view0.append(intra_block(0, 3, view0.head_hash, tx(4, 5)))
    return view0, view1, cross


class TestBlockDAG:
    def test_union_of_views(self):
        view0, view1, cross = build_two_cluster_views()
        dag = BlockDAG.from_views([view0, view1])
        assert len(dag) == 4  # 3 intra + 1 shared cross block
        assert dag.equals_union_of({0: view0, 1: view1})
        dag.verify()

    def test_chain_extraction(self):
        view0, view1, cross = build_two_cluster_views()
        dag = BlockDAG.from_views([view0, view1])
        chain0 = dag.chain_of(0)
        assert [block.position_for(0) for block in chain0] == [1, 2, 3]
        assert cross.block_hash in {block.block_hash for block in chain0}
        assert dag.block_at(1, 2).block_hash == cross.block_hash

    def test_parents_and_children(self):
        view0, view1, cross = build_two_cluster_views()
        dag = BlockDAG.from_views([view0, view1])
        cross_parents = dag.parents(cross.block_hash)
        assert len(cross_parents) == 2
        genesis_children = dag.children(dag.genesis.block_hash)
        assert len(genesis_children) == 2

    def test_fork_detection(self):
        dag = BlockDAG()
        dag.add_block(Block.create(tx(1, 2), positions={0: 1}, proposer=0))
        with pytest.raises(ForkError):
            dag.add_block(Block.create(tx(3, 4), positions={0: 1}, proposer=0))

    def test_cycle_detection(self):
        # Cluster 0 orders A before B, cluster 1 orders B before A.
        a = Block.create(tx(1, 15), positions={0: 1, 1: 2}, proposer=0)
        b = Block.create(tx(2, 16), positions={0: 2, 1: 1}, proposer=0)
        dag = BlockDAG()
        dag.add_block(a)
        dag.add_block(b)
        assert dag.has_commit_order_cycle()
        with pytest.raises(LedgerError):
            dag.topological_order()

    def test_missing_block_lookup(self):
        dag = BlockDAG()
        with pytest.raises(UnknownBlockError):
            dag.block("b" * 64)
        with pytest.raises(UnknownBlockError):
            dag.block_at(0, 1)


class TestAudit:
    def test_consistent_views_pass(self):
        view0, view1, _ = build_two_cluster_views()
        report = audit_views({0: view0, 1: view1})
        assert report.ok
        assert report.cross_shard_blocks == 1
        assert report.intra_shard_blocks == 3
        report.raise_if_failed()

    def test_missing_cross_block_detected(self):
        view0, view1 = ClusterView(0), ClusterView(1)
        cross = Block.create(tx(1, 15), positions={0: 1, 1: 1}, proposer=0)
        view0.append(cross.with_parent(0, view0.head_hash))
        # view1 never appends the cross block.
        report = audit_views({0: view0, 1: view1})
        assert not report.ok
        with pytest.raises(LedgerError):
            report.raise_if_failed()

    def test_pairwise_order_mismatch_detected(self):
        view0, view1 = ClusterView(0), ClusterView(1)
        a = Block.create(tx(1, 15), positions={0: 1, 1: 2}, proposer=0)
        b = Block.create(tx(2, 16), positions={0: 2, 1: 1}, proposer=0)
        view0.append(a.with_parent(0, view0.head_hash))
        view0.append(b.with_parent(0, view0.head_hash))
        view1.append(b.with_parent(1, view1.head_hash))
        view1.append(a.with_parent(1, view1.head_hash))
        problems = check_pairwise_cross_order(view0, view1)
        assert any("differently" in problem for problem in problems)
