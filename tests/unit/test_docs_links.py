"""The docs link checker runs clean — and actually catches breakage.

Keeps ``tools/check_docs.py`` honest inside the tier-1 suite: the
shipped README/docs must contain no broken relative links, and the
checker itself must flag one when it exists (otherwise a silent
regression in the tool would green-light broken docs forever).
"""

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
sys.path.insert(0, str(REPO_ROOT / "tools"))

import check_docs  # noqa: E402


def test_shipped_docs_have_no_broken_links():
    problems = check_docs.broken_links(REPO_ROOT)
    assert problems == [], [
        f"{path.relative_to(REPO_ROOT)}:{line} -> {target}"
        for path, line, target in problems
    ]


def test_readme_and_docs_are_both_scanned():
    files = {path.name for path in check_docs.doc_files(REPO_ROOT)}
    assert "README.md" in files
    assert {"architecture.md", "adversary.md", "recovery.md"} <= files


def test_checker_flags_a_broken_link(tmp_path):
    (tmp_path / "README.md").write_text(
        "see [the docs](docs/missing.md) and [ok](real.md)\n"
    )
    (tmp_path / "real.md").write_text("hi\n")
    problems = check_docs.broken_links(tmp_path)
    assert len(problems) == 1
    assert problems[0][2] == "docs/missing.md"


def test_checker_skips_external_and_anchor_links(tmp_path):
    (tmp_path / "README.md").write_text(
        "[a](https://example.com) [b](#section) [c](mailto:x@y.z)\n"
    )
    assert check_docs.broken_links(tmp_path) == []


def test_cli_exit_codes(tmp_path):
    (tmp_path / "README.md").write_text("[broken](nope.md)\n")
    assert check_docs.main([str(tmp_path)]) == 1
    (tmp_path / "nope.md").write_text("now it exists\n")
    assert check_docs.main([str(tmp_path)]) == 0
