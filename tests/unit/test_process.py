"""Unit tests for the simulated process CPU model and fault injection."""

import pytest

from repro.common.config import PerformanceModel
from repro.sim.costs import CostModel
from repro.sim.network import Network, UniformLatencyModel
from repro.sim.process import Process
from repro.sim.simulator import Simulator


class Echo(Process):
    def __init__(self, pid, sim, network, cost_model):
        super().__init__(pid, sim, network, cost_model)
        self.handled = []

    def on_message(self, message, src):
        self.handled.append((self.sim.now, message))


def build(message_cpu=1e-3):
    sim = Simulator()
    network = Network(sim, UniformLatencyModel(0.0), fifo=True)
    cost = CostModel(PerformanceModel(message_cpu=message_cpu, latency_jitter=0.0))
    a = Echo(0, sim, network, cost)
    b = Echo(1, sim, network, cost)
    return sim, network, a, b


class TestCpuModel:
    def test_messages_are_serialised_on_one_cpu(self):
        sim, network, a, b = build(message_cpu=1e-3)
        network.send(0, 1, "m1")
        network.send(0, 1, "m2")
        network.send(0, 1, "m3")
        sim.run()
        times = [t for t, _ in b.handled]
        # Each message occupies the CPU for 1 ms; handlers run back to back.
        assert times == pytest.approx([1e-3, 2e-3, 3e-3])
        assert b.cpu_busy_time == pytest.approx(3e-3)

    def test_charge_accumulates_busy_time(self):
        sim, network, a, b = build()
        a.charge(2e-3)
        a.charge(1e-3)
        assert a.cpu_free_at == pytest.approx(3e-3)
        assert a.utilization(10e-3) == pytest.approx(0.3)

    def test_send_costs_cpu(self):
        sim, network, a, b = build(message_cpu=1e-3)
        a.send(1, "x")
        assert a.cpu_free_at > 0
        assert a.messages_sent == 1

    def test_signature_costs_are_charged(self):
        class Signed:
            verify_signatures = 2
            sign_signatures = 1

        perf = PerformanceModel(
            message_cpu=1e-3, signature_verify_cpu=5e-3, signature_sign_cpu=7e-3
        )
        cost = CostModel(perf)
        assert cost.receive_cost(Signed()) == pytest.approx(1e-3 + 2 * 5e-3)
        assert cost.send_cost(Signed(), destinations=3) == pytest.approx(7e-3 + 3 * 0.5e-3)


class TestFaultInjection:
    def test_crashed_process_ignores_messages(self):
        sim, network, a, b = build()
        b.crash()
        network.send(0, 1, "lost")
        sim.run()
        assert b.handled == []

    def test_recovered_process_resumes(self):
        sim, network, a, b = build()
        b.crash()
        network.send(0, 1, "lost")
        sim.run()
        b.recover()
        network.send(0, 1, "ok")
        sim.run()
        assert [m for _, m in b.handled] == ["ok"]

    def test_crashed_process_timers_do_not_fire(self):
        sim, network, a, b = build()
        fired = []
        b.set_timer(1.0, fired.append, "x")
        b.crash()
        sim.run()
        assert fired == []

    def test_on_message_must_be_overridden(self):
        sim = Simulator()
        network = Network(sim, UniformLatencyModel(0.0))
        proc = Process(9, sim, network, CostModel(PerformanceModel()))
        with pytest.raises(NotImplementedError):
            proc.on_message("x", 0)
