"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.common.errors import SimulationError
from repro.sim.events import EventQueue
from repro.sim.simulator import Simulator


class TestEventQueue:
    def test_orders_by_time(self):
        queue = EventQueue()
        fired = []
        queue.push(2.0, fired.append, "late")
        queue.push(1.0, fired.append, "early")
        queue.pop().fire()
        queue.pop().fire()
        assert fired == ["early", "late"]

    def test_ties_resolved_in_scheduling_order(self):
        queue = EventQueue()
        fired = []
        queue.push(1.0, fired.append, "first")
        queue.push(1.0, fired.append, "second")
        queue.pop().fire()
        queue.pop().fire()
        assert fired == ["first", "second"]

    def test_cancelled_events_are_skipped(self):
        queue = EventQueue()
        fired = []
        event = queue.push(1.0, fired.append, "cancelled")
        queue.push(2.0, fired.append, "kept")
        event.cancel()
        assert len(queue) == 1
        queue.pop().fire()
        assert fired == ["kept"]
        assert queue.pop() is None

    def test_peek_time_skips_cancelled(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None)
        queue.push(5.0, lambda: None)
        event.cancel()
        assert queue.peek_time() == 5.0


class TestSimulator:
    def test_clock_advances_to_event_times(self):
        sim = Simulator()
        times = []
        sim.schedule(0.5, lambda: times.append(sim.now))
        sim.schedule(1.5, lambda: times.append(sim.now))
        sim.run()
        assert times == [0.5, 1.5]
        assert sim.now == 1.5

    def test_run_until_horizon(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(5.0, fired.append, "b")
        sim.run(until=2.0)
        assert fired == ["a"]
        assert sim.now == 2.0
        sim.run()
        assert fired == ["a", "b"]

    def test_idle_run_advances_clock_to_horizon(self):
        sim = Simulator()
        sim.run(until=3.0)
        assert sim.now == 3.0

    def test_scheduling_in_the_past_is_rejected(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule(-0.1, lambda: None)
        with pytest.raises(SimulationError):
            sim.schedule_at(0.5, lambda: None)

    def test_fired_timer_reports_inactive(self):
        """Rolling timers re-arm on ``not timer.active``; a deadline that
        already passed must not look pending — even when the callback
        body was skipped by a crash guard."""
        sim = Simulator()
        timer = sim.set_timer(1.0, lambda: None)
        assert timer.active
        sim.run()
        assert not timer.active

    def test_timers_can_be_cancelled(self):
        sim = Simulator()
        fired = []
        timer = sim.set_timer(1.0, fired.append, "x")
        assert timer.active
        timer.cancel()
        sim.run()
        assert fired == []
        assert not timer.active

    def test_max_events_limit(self):
        sim = Simulator()
        for _ in range(10):
            sim.schedule(1.0, lambda: None)
        sim.run(max_events=4)
        assert sim.processed_events == 4
        assert sim.pending_events == 6

    def test_events_scheduled_during_run_are_processed(self):
        sim = Simulator()
        fired = []

        def chain(depth):
            fired.append(depth)
            if depth < 3:
                sim.schedule(0.1, chain, depth + 1)

        sim.schedule(0.0, chain, 0)
        sim.run()
        assert fired == [0, 1, 2, 3]

    def test_rng_is_seeded(self):
        assert Simulator(seed=42).rng.random() == Simulator(seed=42).rng.random()
        assert Simulator(seed=1).rng.random() != Simulator(seed=2).rng.random()


class TestBulkScheduling:
    def test_schedule_many_fires_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule_many(
            [(2.0, fired.append, ("late",)), (1.0, fired.append, ("early",))]
        )
        sim.run()
        assert fired == ["early", "late"]
        assert sim.processed_events == 2

    def test_schedule_many_rejects_past_times(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_many([(0.5, lambda: None, ())])

    def test_schedule_many_interleaves_with_regular_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.5, fired.append, "handle")
        sim.schedule_many([(1.0, fired.append, ("bulk-a",)), (2.0, fired.append, ("bulk-b",))])
        sim.run()
        assert fired == ["bulk-a", "handle", "bulk-b"]

    def test_push_fast_events_cannot_be_distinguished_when_popped(self):
        queue = EventQueue()
        fired = []
        queue.push_fast(1.0, fired.append, ("fast",))
        event = queue.pop()
        event.fire()
        assert fired == ["fast"]
        assert event.cancelled  # firing consumes the event


class TestEventsPerSecond:
    def test_counter_tracks_fired_events_and_wall_time(self):
        sim = Simulator()
        for _ in range(100):
            sim.schedule(0.1, lambda: None)
        assert sim.events_per_second == 0.0
        sim.run()
        assert sim.processed_events == 100
        assert sim.run_wall_time > 0.0
        assert sim.events_per_second > 0.0
