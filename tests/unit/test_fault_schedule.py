"""Unit tests for FaultSchedule ordering, arming, and adversary events."""

import pickle

import pytest

from repro import FaultModel, WorkloadConfig
from repro.api import (
    CrashNode,
    FaultSchedule,
    Heal,
    MakeByzantine,
    MakePrimaryByzantine,
    RecoverNode,
    RestoreNode,
)
from repro.api.scenario import DeploymentSpec, Scenario
from repro.common.errors import ConfigurationError


def build_system(num_clusters=2, fault_model=FaultModel.BYZANTINE):
    return Scenario(
        deployment=DeploymentSpec(system="sharper", fault_model=fault_model,
                                  num_clusters=num_clusters),
        workload=WorkloadConfig(accounts_per_shard=16),
    ).build_system()


class TestOrdering:
    def test_add_keeps_events_sorted_by_time(self):
        schedule = FaultSchedule()
        schedule.crash_node(at=0.3, node_id=1)
        schedule.heal(at=0.1)
        schedule.recover_node(at=0.2, node_id=1)
        assert [type(event) for event in schedule.events] == [Heal, RecoverNode, CrashNode]
        assert [event.time for event in schedule.events] == [0.1, 0.2, 0.3]

    def test_ties_keep_insertion_order(self):
        schedule = FaultSchedule()
        schedule.crash_node(at=0.1, node_id=1)
        schedule.crash_node(at=0.1, node_id=2)
        schedule.crash_node(at=0.1, node_id=3)
        assert [event.node_id for event in schedule.events] == [1, 2, 3]

    def test_constructor_sorts_initial_events(self):
        schedule = FaultSchedule([CrashNode(time=0.5, node_id=0), Heal(time=0.1)])
        assert [event.time for event in schedule.events] == [0.1, 0.5]

    def test_interleaved_adds_stay_sorted(self):
        schedule = FaultSchedule()
        for at in (0.5, 0.1, 0.9, 0.3, 0.7):
            schedule.heal(at=at)
        assert [event.time for event in schedule.events] == [0.1, 0.3, 0.5, 0.7, 0.9]

    def test_negative_time_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultSchedule().crash_node(at=-0.1, node_id=0)


class TestArming:
    def test_arm_schedules_every_event(self):
        system = build_system()
        schedule = FaultSchedule().crash_node(at=0.1, node_id=1).heal(at=0.2)
        before = system.sim.pending_events
        schedule.arm(system)
        assert system.sim.pending_events == before + 2

    def test_double_arm_on_same_system_is_a_noop(self):
        system = build_system()
        schedule = FaultSchedule().crash_node(at=0.1, node_id=1)
        schedule.arm(system)
        after_first = system.sim.pending_events
        schedule.arm(system)
        assert system.sim.pending_events == after_first

    def test_arming_a_different_system_schedules_again(self):
        schedule = FaultSchedule().crash_node(at=0.1, node_id=1)
        first = build_system()
        second = build_system()
        schedule.arm(first)
        before = second.sim.pending_events
        schedule.arm(second)
        assert second.sim.pending_events == before + 1

    def test_schedule_pickles_without_the_arm_guard(self):
        system = build_system()
        schedule = FaultSchedule().crash_node(at=0.1, node_id=1)
        schedule.arm(system)
        clone = pickle.loads(pickle.dumps(schedule))
        assert len(clone) == 1
        # The guard does not travel: the clone can arm a fresh system.
        fresh = build_system()
        before = fresh.sim.pending_events
        clone.arm(fresh)
        assert fresh.sim.pending_events == before + 1


class TestAdversaryEvents:
    def test_make_byzantine_attaches_behavior(self):
        system = build_system()
        event = MakeByzantine(time=0.0, node_id=1, behavior="silent-primary")
        event.apply(system)
        process = system.replicas[1]
        assert process.byzantine
        assert process.interceptor is not None
        assert 1 in system.byzantine_nodes

    def test_make_primary_byzantine_targets_the_initial_primary(self):
        system = build_system()
        MakePrimaryByzantine(time=0.0, cluster=1, behavior="silent-primary").apply(system)
        primary = int(system.config.cluster(1).primary)
        assert primary in system.byzantine_nodes

    def test_restore_detaches_and_clears_flags(self):
        system = build_system()
        MakeByzantine(time=0.0, node_id=1, behavior="silent-primary").apply(system)
        RestoreNode(time=0.0, node_id=1).apply(system)
        process = system.replicas[1]
        assert not process.byzantine
        assert process.interceptor is None
        assert system.byzantine_nodes == set()

    def test_adversarial_marker_drives_scenario_autodetection(self):
        clean = Scenario(faults=FaultSchedule().crash_node(at=0.1, node_id=0))
        assert not clean.has_adversary
        attacked = Scenario(
            faults=FaultSchedule().make_byzantine(at=0.1, node=0, behavior="silent-primary")
        )
        assert attacked.has_adversary

    def test_describe_mentions_the_behavior(self):
        event = MakeByzantine(time=0.25, node_id=3, behavior="equivocating-primary")
        assert "equivocating-primary" in event.describe()
        assert "node 3" in event.describe()
