"""Unit tests for the pluggable system registry (repro.api.registry)."""

import pytest

from repro.api import available_systems, get_system, register_system, unregister_system
from repro.baselines import ActivePassiveSystem, AHLSystem, FastConsensusSystem
from repro.common.errors import RegistrationError, SharPerError, UnknownSystemError
from repro.core.system import BaseSystem, SharPerSystem


class TestBuiltinRegistrations:
    def test_all_builtin_systems_registered(self):
        names = set(available_systems())
        assert {"sharper", "ahl", "apr", "fast"} <= names

    def test_names_resolve_to_the_right_classes(self):
        assert get_system("sharper") is SharPerSystem
        assert get_system("ahl") is AHLSystem
        assert get_system("apr") is ActivePassiveSystem
        assert get_system("fast") is FastConsensusSystem

    def test_lookup_is_case_insensitive(self):
        assert get_system("SharPer") is SharPerSystem
        assert get_system("  AHL ") is AHLSystem

    def test_registry_name_attribute(self):
        assert SharPerSystem.registry_name == "sharper"
        assert AHLSystem.registry_name == "ahl"


class TestLookupErrors:
    def test_unknown_system_raises(self):
        with pytest.raises(UnknownSystemError):
            get_system("nope")

    def test_unknown_system_is_a_key_error(self):
        # Historical callers catch KeyError on registry misses.
        with pytest.raises(KeyError):
            get_system("nope")
        with pytest.raises(SharPerError):
            get_system("nope")

    def test_error_message_lists_available_systems(self):
        with pytest.raises(UnknownSystemError, match="sharper"):
            get_system("definitely-not-registered")


class TestPluggability:
    def test_register_and_unregister_a_custom_system(self):
        @register_system("unit-test-system", aliases=("uts",))
        class CustomSystem(BaseSystem):
            pass

        try:
            assert get_system("unit-test-system") is CustomSystem
            assert get_system("uts") is CustomSystem
            assert CustomSystem.registry_name == "unit-test-system"
        finally:
            unregister_system("unit-test-system")
        # Unregistering the canonical name removes the aliases too.
        with pytest.raises(UnknownSystemError):
            get_system("unit-test-system")
        with pytest.raises(UnknownSystemError):
            get_system("uts")

    def test_duplicate_name_rejected(self):
        with pytest.raises(RegistrationError):

            @register_system("sharper")
            class Impostor(BaseSystem):
                pass

    def test_alias_conflict_registers_nothing(self):
        # A conflict on an alias must not leave the canonical name behind.
        with pytest.raises(RegistrationError):

            @register_system("unit-test-partial", aliases=("sharper",))
            class Partial(BaseSystem):
                pass

        with pytest.raises(UnknownSystemError):
            get_system("unit-test-partial")
        assert get_system("sharper") is SharPerSystem

    def test_same_class_reregistration_is_idempotent(self):
        register_system("sharper")(SharPerSystem)
        assert get_system("sharper") is SharPerSystem

    def test_replace_allows_override(self):
        class Override(BaseSystem):
            pass

        register_system("unit-test-override")(Override)
        try:

            @register_system("unit-test-override", replace=True)
            class Replacement(BaseSystem):
                pass

            assert get_system("unit-test-override") is Replacement
        finally:
            unregister_system("unit-test-override")

    def test_empty_name_rejected(self):
        with pytest.raises(RegistrationError):
            register_system("   ")
