"""Unit tests for the recovery subsystem's building blocks.

Covers the compaction primitives (:meth:`OrderingLog.truncate`,
:meth:`ClusterView.prune`), the state-transfer install primitives
(:meth:`OrderingLog.install_checkpoint`,
:meth:`ClusterView.install_anchor`), checkpoint digest determinism, and
the stale-message guards at the low-water mark.
"""

import pytest

from repro.common.errors import ConsensusError
from repro.common.types import AccountId, ClientId, ClusterId
from repro.consensus.log import EntryStatus, OrderingLog, item_digest
from repro.ledger.block import Block
from repro.ledger.view import ClusterView
from repro.recovery import checkpoint_digest
from repro.txn.accounts import AccountStore, ShardMapper

from helpers import simple_transfer


def _decide_and_apply(log: OrderingLog, upto: int) -> None:
    for slot in range(log.next_apply, upto + 1):
        item = simple_transfer(source=slot % 8, destination=(slot + 1) % 8)
        log.decide(slot, item_digest(item), item)
    log.pop_applicable()


class TestOrderingLogTruncation:
    def test_truncate_drops_applied_entries_and_indexes(self):
        log = OrderingLog(ClusterId(0))
        items = {}
        for slot in range(1, 11):
            item = simple_transfer(source=slot % 8, destination=(slot + 1) % 8)
            items[slot] = item
            log.decide(slot, item_digest(item), item)
        log.pop_applicable()
        removed = log.truncate(6)
        assert removed == 6
        assert log.low_water_mark == 6
        assert log.entry_count == 4
        assert log.entry(3) is None
        assert log.entry(7) is not None
        # Dedup index rows below the mark are gone; above it they remain.
        assert log.decided_slot_of(item_digest(items[3])) is None
        assert log.decided_slot_of(item_digest(items[8])) == 8
        assert log.truncated_entries == 6

    def test_truncate_clamps_to_applied_prefix(self):
        log = OrderingLog(ClusterId(0))
        _decide_and_apply(log, 5)
        item = simple_transfer(source=2, destination=3)
        log.decide(7, item_digest(item), item)  # blocked: slot 6 missing
        assert log.truncate(100) == 5
        assert log.low_water_mark == 5
        assert log.entry(7) is not None
        assert log.blocked_decisions == 1

    def test_truncate_is_idempotent(self):
        log = OrderingLog(ClusterId(0))
        _decide_and_apply(log, 4)
        assert log.truncate(4) == 4
        assert log.truncate(4) == 0
        assert log.truncate(2) == 0

    def test_stale_messages_below_low_water_are_ignored(self):
        log = OrderingLog(ClusterId(0))
        _decide_and_apply(log, 5)
        log.truncate(5)
        stale = simple_transfer(source=4, destination=5)
        # Neither a late proposal nor a late decision resurrects slot 2.
        assert log.record_pending(2, item_digest(stale), stale) is None
        assert log.decide(2, item_digest(stale), stale) is None
        assert log.entry(2) is None
        assert log.blocked_decisions == 0
        assert 2 not in log.undecided_slots()

    def test_peak_entry_count_tracks_high_water_mark(self):
        log = OrderingLog(ClusterId(0))
        _decide_and_apply(log, 8)
        assert log.peak_entry_count == 8
        log.truncate(8)
        assert log.entry_count == 0
        assert log.peak_entry_count == 8  # peak survives truncation

    def test_install_checkpoint_jumps_the_apply_cursor(self):
        log = OrderingLog(ClusterId(0))
        _decide_and_apply(log, 3)
        log.install_checkpoint(10)
        assert log.next_apply == 11
        assert log.next_slot == 11
        assert log.low_water_mark == 10
        assert log.entry_count == 0
        # Suffix replay decides and applies above the checkpoint.
        item = simple_transfer(source=1, destination=2)
        log.decide(11, item_digest(item), item)
        assert [entry.slot for entry in log.pop_applicable()] == [11]


def _chain_with_blocks(cluster: ClusterId, count: int) -> ClusterView:
    view = ClusterView(cluster)
    for position in range(1, count + 1):
        transaction = simple_transfer(source=position % 8, destination=(position + 1) % 8)
        block = Block.create(
            transaction, {cluster: position}, proposer=cluster,
            parents={cluster: view.head_hash},
        )
        view.append(block)
    return view


class TestClusterViewPruning:
    def test_prune_keeps_height_and_appends_continue(self):
        cluster = ClusterId(0)
        view = _chain_with_blocks(cluster, 10)
        tx_ids = [block.transactions[0].tx_id for block in view.blocks()]
        dropped = view.prune(7)
        assert dropped == 7
        assert view.height == 10
        assert view.pruned_height == 7
        assert view.retained_from == 8
        assert len(view.blocks()) == 3
        # The anchor (position 7) is retained for hash chaining.
        assert view.block_at(7).position_for(cluster) == 7
        with pytest.raises(Exception):
            view.block_at(3)
        # The transaction index survives pruning (at-most-once checks).
        for tx_id in tx_ids:
            assert view.contains_tx(tx_id)
        # Appending continues seamlessly at position 11.
        transaction = simple_transfer(source=3, destination=4)
        view.append(Block.create(
            transaction, {cluster: 11}, proposer=cluster, parents={cluster: view.head_hash}
        ))
        assert view.height == 11
        view.verify()

    def test_prune_is_idempotent_and_clamped(self):
        view = _chain_with_blocks(ClusterId(0), 5)
        assert view.prune(3) == 3
        assert view.prune(3) == 0
        assert view.prune(2) == 0
        assert view.prune(99) == 2  # clamped to the current height

    def test_install_anchor_resets_onto_remote_checkpoint(self):
        cluster = ClusterId(0)
        helper = _chain_with_blocks(cluster, 6)
        helper.prune(4)
        anchor = helper.block_at(4)
        joiner = ClusterView(cluster)
        joiner.install_anchor(anchor, dict(helper.tx_index_upto(4)))
        assert joiner.height == 4
        assert joiner.head_hash == anchor.block_hash
        assert joiner.next_index == 5
        # Replaying position 5 appends the block every peer holds.
        joiner.append(helper.block_at(5))
        assert joiner.head_hash == helper.block_at(5).block_hash
        joiner.verify()

    def test_tx_index_upto_filters_by_position(self):
        view = _chain_with_blocks(ClusterId(0), 6)
        pairs = dict(view.tx_index_upto(4))
        assert set(pairs.values()) == {1, 2, 3, 4}


class TestCheckpointDigest:
    def test_store_digest_is_construction_independent(self):
        mapper = ShardMapper(num_shards=1, accounts_per_shard=8)
        store = AccountStore.bootstrap(shard=0, mapper=mapper, initial_balance=100)
        store.withdraw(AccountId(1), 30)
        store.deposit(AccountId(5), 30)
        clone = AccountStore(shard=0)
        clone.restore(store.snapshot())
        assert store.state_digest() == clone.state_digest()
        clone.deposit(AccountId(2), 1)
        assert store.state_digest() != clone.state_digest()

    def test_checkpoint_digest_binds_seq_chain_and_store(self):
        digest = checkpoint_digest(10, "head", "store")
        assert digest != checkpoint_digest(11, "head", "store")
        assert digest != checkpoint_digest(10, "other", "store")
        assert digest != checkpoint_digest(10, "head", "other")
        assert digest == checkpoint_digest(10, "head", "store")


class TestDecideConflictsStillRaise:
    def test_fork_above_low_water_still_raises(self):
        log = OrderingLog(ClusterId(0))
        _decide_and_apply(log, 3)
        log.truncate(3)
        item = simple_transfer(source=1, destination=2)
        other = simple_transfer(source=2, destination=3)
        log.decide(5, item_digest(item), item)
        with pytest.raises(ConsensusError):
            log.decide(5, item_digest(other), other)
