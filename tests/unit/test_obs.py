"""Unit tests for the flight recorder (repro.obs) and its exporters."""

import json

import pytest

from repro.obs import (
    FlightRecorder,
    TraceSpec,
    attribute_phases,
    normalize_trace,
    render_phase_table,
    write_chrome_trace,
    write_jsonl,
    write_trace,
)
from repro.obs.export import chrome_trace_events
from repro.obs.phases import KNOWN_PHASES, PHASES_CROSS, PHASES_INTRA, phase_columns
from repro.obs.report import main as report_main


# ----------------------------------------------------------------------
# phase attribution
# ----------------------------------------------------------------------
def _events_for(tx, times):
    """(time, tx, phase, pid) tuples for an intra tx at given phase times."""
    return [(t, tx, phase, 0) for phase, t in times.items()]


class TestAttributePhases:
    def test_gaps_sum_to_end_to_end(self):
        events = _events_for(
            "t1",
            {"submit": 0.0, "enqueue": 0.001, "propose": 0.0015, "decided": 0.003,
             "applied": 0.004, "reply": 0.005},
        )
        breakdown = attribute_phases(events, set())
        assert breakdown.txs == 1
        assert breakdown.attributed_fraction == pytest.approx(1.0)
        total = sum(stats.total_ms for stats in breakdown.intra)
        assert total == pytest.approx(5.0)

    def test_tx_without_reply_excluded(self):
        events = _events_for("t1", {"submit": 0.0, "enqueue": 0.001})
        breakdown = attribute_phases(events, set())
        assert breakdown.txs == 0
        assert breakdown.attributed_fraction == 1.0

    def test_cross_txs_use_cross_taxonomy(self):
        events = _events_for(
            "x1",
            {"submit": 0.0, "enqueue": 0.001, "cross_start": 0.002,
             "cross_prepared": 0.003, "decided": 0.004, "applied": 0.005,
             "reply": 0.006},
        )
        breakdown = attribute_phases(events, {"x1"})
        assert not breakdown.intra
        names = [stats.phase for stats in breakdown.cross]
        assert "cross_start" in names and "cross_prepared" in names
        assert breakdown.attributed_fraction == pytest.approx(1.0)

    def test_first_occurrence_wins_across_replicas(self):
        events = [
            (0.0, "t1", "submit", 100),
            (0.002, "t1", "decided", 1),
            (0.001, "t1", "decided", 0),  # an earlier replica decided first
            (0.003, "t1", "reply", 100),
        ]
        breakdown = attribute_phases(events, set())
        decided = next(s for s in breakdown.intra if s.phase == "decided")
        assert decided.avg_ms == pytest.approx(1.0)

    def test_unknown_phase_time_folds_into_next_gap(self):
        # A milestone outside the canonical order must not lose latency:
        # the gap it would carve merges into the next known milestone.
        events = _events_for("t1", {"submit": 0.0, "decided": 0.004, "reply": 0.005})
        breakdown = attribute_phases(events, set())
        assert breakdown.attributed_fraction == pytest.approx(1.0)

    def test_phase_taxonomies_cover_known_phases(self):
        assert KNOWN_PHASES == frozenset(PHASES_INTRA) | frozenset(PHASES_CROSS)

    def test_render_and_columns(self):
        events = _events_for(
            "t1", {"submit": 0.0, "enqueue": 0.001, "reply": 0.002}
        )
        breakdown = attribute_phases(events, set())
        table = render_phase_table(breakdown)
        assert "enqueue" in table and "100.0%" in table
        columns = phase_columns(breakdown)
        assert columns["phase_intra_enqueue_avg_ms"] == pytest.approx(1.0)


# ----------------------------------------------------------------------
# recorder
# ----------------------------------------------------------------------
class _FakeProcess:
    def __init__(self, pid, cluster_id):
        self.pid = pid
        self.cluster = type("C", (), {"cluster_id": cluster_id})()
        self.log = type("L", (), {"entry_count": 0})()


class _FakeSystem:
    def __init__(self):
        self.network = type(
            "N", (), {"messages_sent": 5, "messages_delivered": 3, "messages_dropped": 0}
        )()
        self._procs = [_FakeProcess(0, 0), _FakeProcess(1, 0)]

    def processes(self):
        return self._procs


class TestFlightRecorder:
    def test_normalize_trace(self):
        assert normalize_trace(None) is None
        assert normalize_trace(False) is None
        assert normalize_trace(True) == TraceSpec()
        spec = TraceSpec(gauges=False)
        assert normalize_trace(spec) is spec

    def test_slot_spans_first_open_wins(self):
        recorder = FlightRecorder()
        recorder.slot_open(0.001, pid=0, cluster=0, slot=7)
        recorder.slot_open(0.002, pid=0, cluster=0, slot=7)  # re-propose: ignored
        recorder.slot_close(0.005, pid=0, slot=7)
        recorder.slot_close(0.006, pid=0, slot=7)  # double close: no-op
        assert recorder.slot_spans == [(0, 0, 7, 0.001, 0.005)]

    def test_vc_span_close_without_open_is_noop(self):
        recorder = FlightRecorder()
        recorder.vc_close(0.1, pid=3, view=2)
        assert recorder.vc_spans == []
        recorder.vc_open(0.1, pid=3, cluster=1, view=2)
        recorder.vc_close(0.2, pid=3, view=2)
        assert recorder.vc_spans == [(3, 1, 2, 0.1, 0.2)]

    def test_count_send_accumulates(self):
        recorder = FlightRecorder()
        recorder.count_send("PrePrepare", 1)
        recorder.count_send("PrePrepare", 3)
        assert recorder.sent_by_type == {"PrePrepare": 4}

    def test_finalize_produces_picklable_report(self):
        import pickle

        recorder = FlightRecorder(TraceSpec(gauges=False))
        recorder.submit(0.0, "t1", 100, cross=False)
        recorder.phase(0.001, "t1", "reply", 100)
        recorder.slot_open(0.0005, pid=0, cluster=0, slot=1)
        report = recorder.finalize(_FakeSystem(), end_time=0.5)
        clone = pickle.loads(pickle.dumps(report))
        assert clone == report
        assert clone.open_slots == ((0, 0, 1, 0.0005),)
        assert clone.breakdown.txs == 1
        assert "1 slot spans" not in clone.summary()  # still open, not closed

    def test_as_dict_columns_are_prefixed(self):
        recorder = FlightRecorder(TraceSpec(gauges=False))
        report = recorder.finalize(_FakeSystem(), end_time=0.1)
        assert all(
            key.startswith(("trace_", "critpath_")) for key in report.as_dict()
        )
        assert "critpath_txs" in report.as_dict()


# ----------------------------------------------------------------------
# exporters + validator + report CLI
# ----------------------------------------------------------------------
def _tiny_report():
    recorder = FlightRecorder(TraceSpec(gauges=False))
    recorder.submit(0.0, "t1", 100, cross=False)
    recorder.phase(0.001, "t1", "enqueue", 0)
    recorder.phase(0.003, "t1", "decided", 0)
    recorder.phase(0.004, "t1", "applied", 0)
    recorder.phase(0.005, "t1", "reply", 100)
    recorder.slot_open(0.001, pid=0, cluster=0, slot=1)
    recorder.slot_close(0.004, pid=0, slot=1)
    recorder.vc_open(0.002, pid=1, cluster=0, view=1)  # left open on purpose
    recorder.count_send("PaxosAccept", 2)
    return recorder.finalize(_FakeSystem(), end_time=0.01)


class TestExport:
    def test_chrome_events_sorted_and_balanced(self):
        events = chrome_trace_events(_tiny_report())
        timestamps = [event["ts"] for event in events if event["ph"] != "M"]
        assert timestamps == sorted(timestamps)
        opens = sum(1 for event in events if event["ph"] == "b")
        closes = sum(1 for event in events if event["ph"] == "e")
        assert opens == closes == 2  # one slot span + one open vc span
        open_close = [
            event for event in events
            if event["ph"] == "e" and event.get("args", {}).get("open")
        ]
        assert len(open_close) == 1  # the vc span closed at end_time

    def test_chrome_trace_validates(self, tmp_path):
        import sys

        sys.path.insert(0, "tools")
        try:
            from validate_trace import validate
        finally:
            sys.path.pop(0)
        path = str(tmp_path / "trace.json")
        write_chrome_trace(_tiny_report(), path)
        assert validate(path) == []

    def test_validator_flags_unbalanced_and_unknown(self, tmp_path):
        import sys

        sys.path.insert(0, "tools")
        try:
            from validate_trace import validate
        finally:
            sys.path.pop(0)
        path = str(tmp_path / "bad.json")
        with open(path, "w") as handle:
            json.dump(
                {
                    "traceEvents": [
                        {"ph": "b", "cat": "slot", "id": "s0:1", "ts": 1},
                        {"ph": "i", "cat": "phase", "name": "warp", "ts": 2},
                    ]
                },
                handle,
            )
        problems = validate(path)
        assert any("unbalanced" in problem for problem in problems)
        assert any("unknown phase" in problem for problem in problems)

    def test_jsonl_roundtrip_and_dispatch(self, tmp_path):
        report = _tiny_report()
        jsonl = str(tmp_path / "trace.jsonl")
        chrome = str(tmp_path / "trace.json")
        write_trace(report, jsonl)
        write_trace(report, chrome)
        rows = [json.loads(line) for line in open(jsonl)]
        assert rows[0]["type"] == "meta"
        assert sum(1 for row in rows if row["type"] == "phase") == len(report.events)
        with open(chrome) as handle:
            assert "traceEvents" in json.load(handle)

    def test_report_cli_on_both_formats(self, tmp_path, capsys):
        report = _tiny_report()
        for name in ("trace.json", "trace.jsonl"):
            path = str(tmp_path / name)
            write_trace(report, path)
            assert report_main([path]) == 0
            out = capsys.readouterr().out
            assert "transactions" in out and "phase events" in out

    def test_report_cli_rejects_empty(self, tmp_path, capsys):
        path = str(tmp_path / "empty.jsonl")
        with open(path, "w") as handle:
            handle.write(json.dumps({"type": "meta", "end": 0.0}) + "\n")
        assert report_main([path]) == 1
        assert "no phase events" in capsys.readouterr().out
