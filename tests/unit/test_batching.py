"""Unit tests for the primary-side batching pipeline.

Covers the pieces the integration differential cannot isolate: batch
digest memoisation, the singleton-unwrap rule, window accounting and
member release, retry dedup, and the view-change reset paths — all
against a minimal fake host, no simulator involved.
"""

import pytest

from repro.common.config import ProtocolTuning
from repro.common.types import AccountId, ClientId, ClusterId
from repro.consensus.batching import BatchPipeline, member_requests
from repro.consensus.log import item_digest
from repro.consensus.messages import ClientRequest, RequestBatch
from repro.txn.transaction import Transaction, Transfer


def make_request(index: int) -> ClientRequest:
    transaction = Transaction(
        tx_id=f"tx-{index}",
        client=ClientId(1),
        transfers=(
            Transfer(
                source=AccountId(2 * index),
                destination=AccountId(2 * index + 1),
                amount=1,
            ),
        ),
    )
    return ClientRequest(
        transaction=transaction, client=ClientId(1), timestamp=float(index)
    )


class FakeIntra:
    def __init__(self):
        self.submitted = []

    def submit(self, item):
        self.submitted.append(item)


class FakeCross:
    def __init__(self):
        self.started = []

    def start(self, item):
        self.started.append(item)


class FakeHost:
    """The slice of SharPerReplica that BatchPipeline touches."""

    def __init__(self, batch_size=4, pipeline_depth=2, primary=True):
        self.tuning = ProtocolTuning(
            batch_size=batch_size, pipeline_depth=pipeline_depth
        )
        self.is_cluster_primary = primary
        self.cluster_id = ClusterId(0)
        self.intra = FakeIntra()
        self.cross = FakeCross()
        self.forwarded = []
        self.monitored = []
        #: flight recorder (ConsensusHost interface); left unarmed here.
        self.recorder = None
        self.now = 0.0
        self.node_id = 0

    def primary_pid_of(self, cluster):
        return 1

    def _monitor_forwarded_request(self, request):
        self.monitored.append(request)

    def _forward(self, request, destination):
        self.forwarded.append((request, destination))


class TestRequestBatchDigest:
    def test_digest_is_memoised_on_the_instance(self):
        batch = RequestBatch(requests=(make_request(0), make_request(1)))
        first = batch.payload_digest()
        assert batch.__dict__["_item_digest"] is first
        assert batch.payload_digest() is first

    def test_digest_depends_on_member_order(self):
        a, b = make_request(0), make_request(1)
        assert (
            RequestBatch(requests=(a, b)).payload_digest()
            != RequestBatch(requests=(b, a)).payload_digest()
        )

    def test_digest_differs_from_any_member(self):
        a, b = make_request(0), make_request(1)
        batch = RequestBatch(requests=(a, b))
        assert batch.payload_digest() not in (a.payload_digest(), b.payload_digest())

    def test_representative_transaction_is_first_member(self):
        a, b = make_request(0), make_request(1)
        assert RequestBatch(requests=(a, b)).transaction is a.transaction


class TestMemberRequests:
    def test_batch_yields_members(self):
        a, b = make_request(0), make_request(1)
        assert member_requests(RequestBatch(requests=(a, b))) == (a, b)

    def test_bare_request_yields_itself(self):
        request = make_request(0)
        assert member_requests(request) == (request,)

    def test_other_items_yield_nothing(self):
        assert member_requests(object()) == ()


class TestPipelineMechanics:
    def test_singleton_proposes_bare_request(self):
        """A queue of one must not wrap: digests match the legacy path."""
        host = FakeHost(batch_size=4)
        pipeline = BatchPipeline(host)
        request = make_request(0)
        pipeline.submit_intra(request)
        assert host.intra.submitted == [request]
        assert pipeline.singletons_proposed == 1
        assert pipeline.batches_proposed == 0

    def test_backlog_drains_in_batches_behind_the_window(self):
        host = FakeHost(batch_size=3, pipeline_depth=1)
        pipeline = BatchPipeline(host)
        requests = [make_request(i) for i in range(5)]
        for request in requests:
            pipeline.submit_intra(request)
        # Window of 1: the first request went out alone; the rest queue.
        assert host.intra.submitted == [requests[0]]
        pipeline.item_applied(item_digest(requests[0]))
        # Slot freed: the backlog drains as one batch of batch_size.
        assert len(host.intra.submitted) == 2
        batch = host.intra.submitted[1]
        assert isinstance(batch, RequestBatch)
        assert batch.requests == tuple(requests[1:4])
        pipeline.item_applied(item_digest(batch))
        # Remaining single request unwraps again.
        assert host.intra.submitted[2] is requests[4]
        assert pipeline.max_batch == 3
        assert pipeline.batched_requests == 3

    def test_window_release_frees_members(self):
        host = FakeHost(batch_size=2, pipeline_depth=1)
        pipeline = BatchPipeline(host)
        a, b = make_request(0), make_request(1)
        pipeline.submit_intra(a)
        assert pipeline.knows(item_digest(a))
        pipeline.item_applied(item_digest(a))
        assert not pipeline.knows(item_digest(a))
        assert not pipeline.knows(item_digest(b))

    def test_retry_of_queued_request_is_dropped(self):
        host = FakeHost(batch_size=4, pipeline_depth=1)
        pipeline = BatchPipeline(host)
        request = make_request(0)
        pipeline.submit_intra(request)
        pipeline.submit_intra(request)  # client retry while in flight
        assert host.intra.submitted == [request]
        pipeline.item_applied(item_digest(request))
        assert host.intra.submitted == [request]  # nothing re-queued

    def test_cross_lanes_share_one_window(self):
        """Lanes keep batches homogeneous; the window is global.

        A freed slot must be offered to *every* lane — the applied
        item's own lane may be empty while another is backed up.
        """
        host = FakeHost(batch_size=2, pipeline_depth=1)
        pipeline = BatchPipeline(host)
        near = (ClusterId(0), ClusterId(1))
        far = (ClusterId(0), ClusterId(2))
        a, b, c = make_request(0), make_request(1), make_request(2)
        pipeline.submit_cross(a, near)
        pipeline.submit_cross(b, near)  # queues: the shared window is full
        pipeline.submit_cross(c, far)  # different lane, same full window
        assert host.cross.started == [a]
        pipeline.item_applied(item_digest(a))
        assert host.cross.started == [a, b]
        pipeline.item_applied(item_digest(b))
        # b's own lane is drained; the slot still reaches the far lane.
        assert host.cross.started == [a, b, c]

    def test_non_primary_never_proposes(self):
        host = FakeHost(primary=False)
        pipeline = BatchPipeline(host)
        pipeline.submit_intra(make_request(0))
        assert host.intra.submitted == []

    def test_batch_size_floor_is_one(self):
        host = FakeHost(batch_size=0, pipeline_depth=0)
        pipeline = BatchPipeline(host)
        assert pipeline.batch_size == 1
        assert pipeline.pipeline_depth == 1


class TestViewChangeReset:
    def test_new_primary_repumps_its_queues(self):
        host = FakeHost(batch_size=2, pipeline_depth=1)
        pipeline = BatchPipeline(host)
        requests = [make_request(i) for i in range(3)]
        for request in requests:
            pipeline.submit_intra(request)
        assert host.intra.submitted == [requests[0]]
        # View change: in-flight slots are the protocol's problem now;
        # the window reopens and the queue drains into it.
        pipeline.on_view_installed()
        assert pipeline.view_resets == 1
        batch = host.intra.submitted[1]
        assert isinstance(batch, RequestBatch)
        assert batch.requests == tuple(requests[1:3])

    def test_demoted_replica_forwards_queued_requests(self):
        host = FakeHost(batch_size=2, pipeline_depth=1)
        pipeline = BatchPipeline(host)
        requests = [make_request(i) for i in range(3)]
        for request in requests:
            pipeline.submit_intra(request)
        host.is_cluster_primary = False
        pipeline.on_view_installed()
        forwarded = [request for request, _ in host.forwarded]
        assert forwarded == requests[1:3]
        assert host.monitored == requests[1:3]
        assert all(destination == 1 for _, destination in host.forwarded)
        # Forwarded members leave the dedup index: the new primary owns
        # them now, and a later retry through this replica must forward
        # again rather than vanish.
        assert not pipeline.knows(item_digest(requests[1]))
