"""Unit tests for the bench reporting layer (CSV/table header contract)."""

import csv
import io

from repro.bench.harness import Curve, CurvePoint
from repro.bench.reporting import figure_to_csv, format_table
from repro.common.metrics import RunStats


#: the header every pre-observability BENCH_* CSV carried, in order —
#: traced sweeps may append columns, but this prefix must never change.
LEGACY_HEADER = ["system", "clients", "throughput_tps", "avg_latency_ms", "p95_latency_ms"]


def _stats(committed=100, avg=0.002):
    return RunStats(
        duration=1.0,
        committed=committed,
        aborted=0,
        throughput=committed / 1.0,
        avg_latency=avg,
        p50_latency=avg,
        p95_latency=avg * 2,
        p99_latency=avg * 3,
        avg_latency_intra=avg,
        avg_latency_cross=0.0,
        committed_cross=0,
    )


def _curve(phase_columns=None):
    return Curve(
        system="sharper",
        label="SharPer",
        points=(
            CurvePoint(clients=8, stats=_stats(80)),
            CurvePoint(clients=16, stats=_stats(160), phase_columns=phase_columns or {}),
        ),
    )


class _FakeFigureResult:
    """Duck-typed stand-in for FigureResult (figure_to_csv only calls as_rows)."""

    def __init__(self, rows):
        self._rows = rows

    def as_rows(self):
        return self._rows


class TestHeaderStability:
    def test_untraced_header_is_exactly_legacy(self):
        rows = _curve().as_rows()
        csv_text = figure_to_csv(_FakeFigureResult(rows))
        header = csv_text.splitlines()[0].split(",")
        assert header == LEGACY_HEADER

    def test_traced_columns_append_after_legacy_prefix(self):
        rows = _curve({"phase_intra_decided_avg_ms": 0.5}).as_rows()
        csv_text = figure_to_csv(_FakeFigureResult(rows))
        header = csv_text.splitlines()[0].split(",")
        assert header[: len(LEGACY_HEADER)] == LEGACY_HEADER
        assert header[len(LEGACY_HEADER) :] == ["phase_intra_decided_avg_ms"]

    def test_rows_missing_extra_columns_get_empty_cells(self):
        rows = _curve({"phase_intra_decided_avg_ms": 0.5}).as_rows()
        csv_text = figure_to_csv(_FakeFigureResult(rows))
        parsed = list(csv.DictReader(io.StringIO(csv_text)))
        assert parsed[0]["phase_intra_decided_avg_ms"] == ""
        assert parsed[1]["phase_intra_decided_avg_ms"] == "0.5"

    def test_format_table_renders_union_of_columns(self):
        rows = _curve({"phase_intra_decided_avg_ms": 0.5}).as_rows()
        table = format_table(rows)
        assert "phase_intra_decided_avg_ms" in table.splitlines()[0]
        assert "0.5" in table

    def test_format_table_empty(self):
        assert format_table([]) == "(no data)"
