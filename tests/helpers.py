"""Shared fixtures/helpers for the test suite."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.config import ClusterConfig, SystemConfig
from repro.common.types import ClusterId, FaultModel, NodeId
from repro.consensus.log import OrderingLog
from repro.txn.transaction import Transaction


class FakeTimer:
    """Timer stand-in used by engine unit tests (never fires by itself)."""

    def __init__(self) -> None:
        self.cancelled = False

    @property
    def active(self) -> bool:
        return not self.cancelled

    def cancel(self) -> None:
        self.cancelled = True


@dataclass
class SentMessage:
    """A message captured by :class:`FakeHost`."""

    kind: str  # "multicast" or "send"
    destination: int | None
    message: object


class FakeHost:
    """Minimal in-memory ConsensusHost used to unit-test engines."""

    def __init__(self, node_id: int, cluster: ClusterConfig) -> None:
        self.node_id = NodeId(node_id)
        self.cluster = cluster
        self.log = OrderingLog(cluster.cluster_id)
        self.sent: list[SentMessage] = []
        self.decide_notifications = 0
        self.timers: list[FakeTimer] = []
        #: simulated clock (ConsensusHost interface); tests may advance it.
        self.now = 0.0
        #: flight recorder (ConsensusHost interface); left unarmed here.
        self.recorder = None

    # -- ConsensusHost interface ---------------------------------------
    def multicast_cluster(self, message: object) -> None:
        self.sent.append(SentMessage("multicast", None, message))

    def send_to(self, node_id: int, message: object) -> None:
        self.sent.append(SentMessage("send", int(node_id), message))

    def after_decide(self) -> None:
        self.decide_notifications += 1

    def set_timer(self, delay: float, callback, *args) -> FakeTimer:
        timer = FakeTimer()
        self.timers.append(timer)
        return timer

    @property
    def view_change_timeout(self) -> float:
        return 0.5

    # -- convenience -----------------------------------------------------
    def messages_of_type(self, message_type) -> list[object]:
        return [sent.message for sent in self.sent if isinstance(sent.message, message_type)]


def crash_cluster(cluster_id: int = 0, size: int = 3, f: int = 1) -> ClusterConfig:
    """A crash-only cluster with node ids 0..size-1 (offset by cluster)."""
    base = cluster_id * size
    return ClusterConfig(
        cluster_id=ClusterId(cluster_id),
        node_ids=tuple(NodeId(base + index) for index in range(size)),
        fault_model=FaultModel.CRASH,
        f=f,
    )


def byzantine_cluster(cluster_id: int = 0, size: int = 4, f: int = 1) -> ClusterConfig:
    """A Byzantine cluster with node ids 0..size-1 (offset by cluster)."""
    base = cluster_id * size
    return ClusterConfig(
        cluster_id=ClusterId(cluster_id),
        node_ids=tuple(NodeId(base + index) for index in range(size)),
        fault_model=FaultModel.BYZANTINE,
        f=f,
    )


def simple_transfer(source: int = 0, destination: int = 1, amount: int = 5) -> Transaction:
    """A one-transfer transaction for tests that only need a payload."""
    return Transaction.transfer(
        client=source % 8, source=source, destination=destination, amount=amount
    )
