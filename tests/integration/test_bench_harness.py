"""Integration tests for the benchmark harness, figure registry, and CLI."""

import pytest

from repro.bench.cli import main as cli_main
from repro.bench.experiments import FIGURES, list_figures, run_figure
from repro.bench.harness import ExperimentSpec, run_curve, run_point, peak_throughput
from repro.bench.reporting import figure_to_csv, format_figure, format_table
from repro.common.types import FaultModel


class TestExperimentSpec:
    def test_unknown_system_rejected(self):
        spec = ExperimentSpec(system="nope", fault_model=FaultModel.CRASH)
        with pytest.raises(KeyError):
            spec.build_system()

    def test_build_every_registered_system(self):
        for name in ("sharper", "ahl", "apr", "fast"):
            spec = ExperimentSpec(system=name, fault_model=FaultModel.CRASH)
            system = spec.build_system()
            assert system.route(system.make_workload().next_transaction()) >= 0


class TestHarness:
    def test_run_point_produces_stats(self):
        spec = ExperimentSpec(
            system="sharper", fault_model=FaultModel.CRASH,
            cross_shard_fraction=0.2, duration=0.08, warmup=0.02,
        )
        stats = run_point(spec, clients=8, check_consistency=True)
        assert stats.committed > 0
        assert stats.throughput > 0
        assert stats.avg_latency > 0

    def test_run_curve_and_peak(self):
        spec = ExperimentSpec(
            system="apr", fault_model=FaultModel.CRASH, duration=0.06, warmup=0.01
        )
        curve = run_curve(spec, client_counts=[2, 8], label="APR-C")
        assert len(curve.points) == 2
        assert peak_throughput(curve) == max(p.throughput for p in curve.points)
        rows = curve.as_rows()
        assert rows[0]["system"] == "APR-C"


class TestFigureRegistry:
    def test_every_paper_figure_is_defined(self):
        expected = {"fig6a", "fig6b", "fig6c", "fig6d", "fig7a", "fig7b", "fig7c", "fig7d", "fig8a", "fig8b"}
        assert expected == set(list_figures())

    def test_figure_series_match_paper(self):
        assert [series.label for series in FIGURES["fig6a"].series] == [
            "SharPer", "AHL-C", "APR-C", "FPaxos",
        ]
        assert [series.label for series in FIGURES["fig7d"].series] == [
            "SharPer", "AHL-B", "APR-B", "FaB",
        ]
        assert [series.num_clusters for series in FIGURES["fig8a"].series] == [2, 3, 4, 5]

    def test_cross_shard_fractions_match_paper(self):
        assert FIGURES["fig6a"].cross_shard_fraction == 0.0
        assert FIGURES["fig6c"].cross_shard_fraction == 0.8
        assert FIGURES["fig7d"].cross_shard_fraction == 1.0
        assert FIGURES["fig8a"].cross_shard_fraction == pytest.approx(0.1)

    def test_unknown_figure_rejected(self):
        with pytest.raises(KeyError):
            run_figure("fig99z")


class TestReporting:
    def test_format_table(self):
        text = format_table([{"a": 1, "b": "xy"}, {"a": 22, "b": "z"}])
        assert "a" in text and "22" in text
        assert format_table([]) == "(no data)"

    def test_figure_run_and_reports(self):
        result = run_figure(
            "fig6a", client_counts=[4], duration=0.05, warmup=0.01
        )
        text = format_figure(result)
        assert "fig6a" in text and "SharPer" in text
        csv_text = figure_to_csv(result)
        assert csv_text.splitlines()[0].startswith("system,")
        assert len(result.peaks()) == 4

    def test_cli_list(self, capsys):
        assert cli_main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig6a" in out and "fig8b" in out
