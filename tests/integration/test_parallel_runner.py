"""Integration tests for the parallel bench runner and determinism.

The tentpole guarantee: scenarios are deterministic and self-contained,
so farming them out to a ``multiprocessing`` pool must not change a
single reported number.  These tests pin that down, plus the perfbench
report format.
"""

from __future__ import annotations

import json

from repro.api import DeploymentSpec, Scenario, run_scenarios, run_sweep
from repro.bench import perfbench
from repro.bench.harness import ExperimentSpec, run_curve
from repro.common.metrics import RunStats
from repro.common.types import FaultModel
from repro.txn.workload import WorkloadConfig


def small_scenario(seed: int = 11, clients: int = 6) -> Scenario:
    return Scenario(
        deployment=DeploymentSpec(
            system="sharper", fault_model=FaultModel.CRASH, num_clusters=3
        ),
        workload=WorkloadConfig(cross_shard_fraction=0.2, accounts_per_shard=64),
        clients=clients,
        duration=0.08,
        warmup=0.02,
        seed=seed,
    )


class TestDeterminism:
    def test_same_seed_twice_is_identical_serially(self):
        first = small_scenario().run()
        second = small_scenario().run()
        assert first.stats == second.stats
        assert first.chain_heights == second.chain_heights
        assert first.audit.problems == second.audit.problems
        assert first.total_balance == second.total_balance

    def test_serial_and_jobs2_results_are_identical(self):
        """The determinism regression test: serial vs --jobs 2."""
        scenarios = [small_scenario(), small_scenario(clients=12)]
        serial = run_scenarios(scenarios, jobs=1)
        pooled = run_scenarios(scenarios, jobs=2)
        for serial_result, pooled_result in zip(serial, pooled):
            assert serial_result.stats == pooled_result.stats
            assert serial_result.chain_heights == pooled_result.chain_heights
            assert serial_result.audit.ok == pooled_result.audit.ok
            assert serial_result.audit.problems == pooled_result.audit.problems
            assert serial_result.total_balance == pooled_result.total_balance
            assert serial_result.expected_balance == pooled_result.expected_balance

    def test_pooled_results_are_detached(self):
        scenarios = [small_scenario(), small_scenario(clients=12)]
        pooled = run_scenarios(scenarios, jobs=2)
        assert all(result.system is None for result in pooled)
        serial = run_scenarios(scenarios, jobs=1)
        assert all(result.system is not None for result in serial)

    def test_run_sweep_jobs_matches_serial(self):
        scenario = small_scenario()
        serial = run_sweep(scenario, [4, 8], jobs=1)
        pooled = run_sweep(scenario, [4, 8], jobs=2)
        assert [result.stats for result in serial] == [result.stats for result in pooled]


class TestMultiSeedCurve:
    def test_seeds_aggregate_into_one_point(self):
        spec = ExperimentSpec(
            system="sharper",
            fault_model=FaultModel.CRASH,
            num_clusters=2,
            duration=0.08,
            warmup=0.02,
        )
        curve = run_curve(spec, [6], seeds=[1, 2], jobs=2)
        assert len(curve.points) == 1
        pooled = curve.points[0].stats
        singles = [
            run_curve(
                ExperimentSpec(
                    system="sharper",
                    fault_model=FaultModel.CRASH,
                    num_clusters=2,
                    duration=0.08,
                    warmup=0.02,
                    seed=seed,
                ),
                [6],
            ).points[0].stats
            for seed in (1, 2)
        ]
        assert pooled == RunStats.aggregate(singles)
        assert pooled.committed == singles[0].committed + singles[1].committed


class TestPerfbench:
    def test_quick_report_schema_and_file(self, tmp_path):
        output = tmp_path / "BENCH_kernel.json"
        perfbench.main(["--quick", "--output", str(output)])
        report = json.loads(output.read_text())
        assert report["schema"] == "sharper-perfbench/1"
        assert report["kernel"]["events_per_second"] > 0
        assert report["fig8"]["total_wall_s"] > 0
        assert report["baseline"]["fig8"]["total_wall_s"] > 0
        # quick mode is never compared against the recorded baseline sweep
        assert report["speedup"]["comparable_to_baseline"] is False
        assert report["speedup"]["fig8_wall"] is None
