"""End-to-end integration tests for the SharPer system (crash and Byzantine).

Each test builds a full deployment in the simulator, drives it with
closed-loop clients, lets it drain, and then checks the paper's safety
properties: per-cluster total order, presence and consistency of
cross-shard blocks in every involved cluster, agreement among the
replicas of one cluster, and conservation of the total balance.
"""

import pytest

from repro.common.metrics import MetricsCollector
from repro.common.types import FaultModel
from repro.core import SharPerSystem
from repro.common.config import SystemConfig
from repro.txn.workload import WorkloadConfig


def run_system(fault_model, cross_fraction, clients=12, duration=0.15, num_clusters=4, seed=5):
    config = SystemConfig.build(num_clusters, fault_model, seed=seed)
    workload = WorkloadConfig(
        cross_shard_fraction=cross_fraction, accounts_per_shard=64, num_clients=16
    )
    system = SharPerSystem(config, workload, seed=seed)
    metrics = MetricsCollector(warmup=0.02, measure_until=duration)
    group = system.spawn_clients(clients, metrics)
    system.start_clients(group)
    end = system.sim.run(until=duration)
    system.drain()
    return system, metrics.finalize(end)


class TestCrashDeployment:
    def test_intra_shard_only(self):
        system, stats = run_system(FaultModel.CRASH, cross_fraction=0.0)
        assert stats.committed > 100
        report = system.audit()
        assert report.ok, report.problems
        assert report.cross_shard_blocks == 0
        assert system.total_balance() == system.expected_total_balance()

    def test_mixed_workload(self):
        system, stats = run_system(FaultModel.CRASH, cross_fraction=0.3)
        assert stats.committed_cross > 10
        report = system.audit()
        assert report.ok, report.problems
        assert report.cross_shard_blocks > 0
        assert system.total_balance() == system.expected_total_balance()

    def test_all_replicas_of_a_cluster_agree(self):
        system, _ = run_system(FaultModel.CRASH, cross_fraction=0.2)
        for cluster_id, views in system.all_views().items():
            heights = {view.height for view in views}
            assert len(heights) == 1, f"cluster {cluster_id} replicas diverge: {heights}"
            hashes = {view.head_hash for view in views}
            assert len(hashes) == 1

    def test_cross_blocks_present_in_all_involved_views(self):
        system, _ = run_system(FaultModel.CRASH, cross_fraction=0.5)
        views = system.views()
        checked = 0
        for view in views.values():
            for block in view.cross_shard_blocks():
                for cluster in block.involved_clusters:
                    assert views[cluster].contains_tx(block.tx_ids[0])
                checked += 1
        assert checked > 0

    def test_clients_receive_replies(self):
        system, stats = run_system(FaultModel.CRASH, cross_fraction=0.2)
        completed = sum(client.completed for client in system.clients)
        assert completed >= stats.committed
        assert all(client.failed == 0 for client in system.clients)

    def test_throughput_scales_with_clusters(self):
        # Enough clients to saturate the smaller deployment, so the extra
        # clusters show up as extra throughput (Figure 8 in miniature).
        _, two = run_system(FaultModel.CRASH, 0.1, clients=72, num_clusters=2)
        _, four = run_system(FaultModel.CRASH, 0.1, clients=72, num_clusters=4)
        assert four.throughput > 1.4 * two.throughput


class TestByzantineDeployment:
    def test_intra_shard_only(self):
        system, stats = run_system(FaultModel.BYZANTINE, cross_fraction=0.0)
        assert stats.committed > 50
        report = system.audit()
        assert report.ok, report.problems
        assert system.total_balance() == system.expected_total_balance()

    def test_mixed_workload(self):
        system, stats = run_system(FaultModel.BYZANTINE, cross_fraction=0.3)
        assert stats.committed_cross > 5
        report = system.audit()
        assert report.ok, report.problems
        assert system.total_balance() == system.expected_total_balance()

    def test_clients_need_f_plus_one_matching_replies(self):
        system, _ = run_system(FaultModel.BYZANTINE, cross_fraction=0.0, clients=4)
        assert system.required_replies == 2

    def test_replicas_of_a_cluster_agree(self):
        system, _ = run_system(FaultModel.BYZANTINE, cross_fraction=0.2)
        for cluster_id, views in system.all_views().items():
            assert len({view.head_hash for view in views}) == 1


class TestFaultTolerance:
    def test_backup_crash_does_not_stop_progress_crash_model(self):
        config = SystemConfig.build(2, FaultModel.CRASH, seed=9)
        workload = WorkloadConfig(cross_shard_fraction=0.0, accounts_per_shard=32, num_clients=8)
        system = SharPerSystem(config, workload, seed=9)
        metrics = MetricsCollector()
        clients = system.spawn_clients(6, metrics)
        system.start_clients(clients)
        system.sim.run(until=0.05)
        # Crash one backup of cluster 0 (f = 1 tolerated).
        system.crash_node(int(config.clusters[0].node_ids[-1]))
        before = sum(view.height for view in system.views().values())
        system.sim.run(until=0.15)
        after = sum(view.height for view in system.views().values())
        assert after > before
        system.drain()
        assert system.audit().ok

    def test_primary_crash_triggers_view_change(self):
        from repro.common.config import ProtocolTuning

        tuning = ProtocolTuning(view_change_timeout=0.05)
        config = SystemConfig.build(2, FaultModel.CRASH, tuning=tuning, seed=11)
        workload = WorkloadConfig(cross_shard_fraction=0.0, accounts_per_shard=32, num_clients=8)
        system = SharPerSystem(config, workload, seed=11)
        metrics = MetricsCollector()
        clients = system.spawn_clients(4, metrics, retry_timeout=0.1)
        system.start_clients(clients)
        system.sim.run(until=0.05)
        system.crash_primary(config.clusters[0].cluster_id)
        system.sim.run(until=0.8)
        # A non-crashed replica of cluster 0 took over as primary.
        survivors = [
            replica
            for replica in system.replicas_of(config.clusters[0].cluster_id)
            if not replica.crashed
        ]
        assert any(replica.intra.view > 0 for replica in survivors)
        # And the cluster keeps committing new transactions after failover.
        height_after_failover = max(replica.chain.height for replica in survivors)
        system.sim.run(until=1.2)
        assert max(replica.chain.height for replica in survivors) > height_after_failover
