"""End-to-end integration tests for the SharPer system (crash and Byzantine).

Each test declares a :class:`repro.api.Scenario`, runs it, and checks the
paper's safety properties on the result: per-cluster total order,
presence and consistency of cross-shard blocks in every involved
cluster, agreement among the replicas of one cluster, and conservation
of the total balance.
"""

import pytest

from repro.api import DeploymentSpec, FaultSchedule, Scenario
from repro.common.config import ProtocolTuning
from repro.common.types import FaultModel
from repro.txn.workload import WorkloadConfig


def make_scenario(
    fault_model,
    cross_fraction,
    clients=12,
    duration=0.15,
    num_clusters=4,
    seed=5,
    **overrides,
):
    return Scenario(
        deployment=DeploymentSpec(
            system="sharper", fault_model=fault_model, num_clusters=num_clusters
        ),
        workload=WorkloadConfig(
            cross_shard_fraction=cross_fraction, accounts_per_shard=64, num_clients=16
        ),
        clients=clients,
        duration=duration,
        warmup=0.02,
        seed=seed,
        **overrides,
    )


def run_system(fault_model, cross_fraction, clients=12, duration=0.15, num_clusters=4, seed=5):
    result = make_scenario(
        fault_model, cross_fraction, clients=clients, duration=duration,
        num_clusters=num_clusters, seed=seed,
    ).run()
    return result.system, result.stats


class TestCrashDeployment:
    def test_intra_shard_only(self):
        result = make_scenario(FaultModel.CRASH, cross_fraction=0.0).run()
        assert result.stats.committed > 100
        assert result.audit.ok, result.audit.problems
        assert result.audit.cross_shard_blocks == 0
        assert result.balance_conserved
        assert result.ok

    def test_mixed_workload(self):
        result = make_scenario(FaultModel.CRASH, cross_fraction=0.3).run()
        assert result.stats.committed_cross > 10
        assert result.audit.ok, result.audit.problems
        assert result.audit.cross_shard_blocks > 0
        assert result.balance_conserved

    def test_all_replicas_of_a_cluster_agree(self):
        system, _ = run_system(FaultModel.CRASH, cross_fraction=0.2)
        for cluster_id, views in system.all_views().items():
            heights = {view.height for view in views}
            assert len(heights) == 1, f"cluster {cluster_id} replicas diverge: {heights}"
            hashes = {view.head_hash for view in views}
            assert len(hashes) == 1

    def test_cross_blocks_present_in_all_involved_views(self):
        system, _ = run_system(FaultModel.CRASH, cross_fraction=0.5)
        views = system.views()
        checked = 0
        for view in views.values():
            for block in view.cross_shard_blocks():
                for cluster in block.involved_clusters:
                    assert views[cluster].contains_tx(block.tx_ids[0])
                checked += 1
        assert checked > 0

    def test_clients_receive_replies(self):
        system, stats = run_system(FaultModel.CRASH, cross_fraction=0.2)
        completed = sum(client.completed for client in system.clients)
        assert completed >= stats.committed
        assert all(client.failed == 0 for client in system.clients)

    def test_chain_heights_reported_per_cluster(self):
        result = make_scenario(FaultModel.CRASH, cross_fraction=0.2).run()
        assert set(result.chain_heights) == {
            cluster.cluster_id for cluster in result.system.config.clusters
        }
        assert all(height > 0 for height in result.chain_heights.values())

    def test_throughput_scales_with_clusters(self):
        # Enough clients to saturate the smaller deployment, so the extra
        # clusters show up as extra throughput (Figure 8 in miniature).
        _, two = run_system(FaultModel.CRASH, 0.1, clients=72, num_clusters=2)
        _, four = run_system(FaultModel.CRASH, 0.1, clients=72, num_clusters=4)
        assert four.throughput > 1.4 * two.throughput


class TestByzantineDeployment:
    def test_intra_shard_only(self):
        result = make_scenario(FaultModel.BYZANTINE, cross_fraction=0.0).run()
        assert result.stats.committed > 50
        assert result.audit.ok, result.audit.problems
        assert result.balance_conserved

    def test_mixed_workload(self):
        result = make_scenario(FaultModel.BYZANTINE, cross_fraction=0.3).run()
        assert result.stats.committed_cross > 5
        assert result.audit.ok, result.audit.problems
        assert result.balance_conserved

    def test_clients_need_f_plus_one_matching_replies(self):
        system, _ = run_system(FaultModel.BYZANTINE, cross_fraction=0.0, clients=4)
        assert system.required_replies == 2

    def test_replicas_of_a_cluster_agree(self):
        system, _ = run_system(FaultModel.BYZANTINE, cross_fraction=0.2)
        for cluster_id, views in system.all_views().items():
            assert len({view.head_hash for view in views}) == 1


class TestFaultTolerance:
    def test_backup_crash_does_not_stop_progress_crash_model(self):
        # The backup crash is declared up front; the run needs to be
        # interleaved to compare heights, so drive the system manually
        # after building it from the scenario.
        scenario = Scenario(
            deployment=DeploymentSpec(system="sharper", fault_model=FaultModel.CRASH,
                                      num_clusters=2),
            workload=WorkloadConfig(
                cross_shard_fraction=0.0, accounts_per_shard=32, num_clients=8
            ),
            clients=6,
            seed=9,
        )
        system = scenario.build_system()
        from repro.common.metrics import MetricsCollector

        metrics = MetricsCollector()
        clients = system.spawn_clients(scenario.clients, metrics)
        system.start_clients(clients)
        # Crash one backup of cluster 0 at t=50ms (f = 1 tolerated).
        config = system.config
        FaultSchedule().crash_node(
            at=0.05, node_id=int(config.clusters[0].node_ids[-1])
        ).arm(system)
        system.sim.run(until=0.05)
        before = sum(view.height for view in system.views().values())
        system.sim.run(until=0.15)
        after = sum(view.height for view in system.views().values())
        assert after > before
        system.drain()
        assert system.audit().ok

    def test_primary_crash_triggers_view_change(self):
        scenario = Scenario(
            deployment=DeploymentSpec(
                system="sharper", fault_model=FaultModel.CRASH, num_clusters=2,
                tuning=ProtocolTuning(view_change_timeout=0.05),
            ),
            workload=WorkloadConfig(
                cross_shard_fraction=0.0, accounts_per_shard=32, num_clients=8
            ),
            clients=4,
            duration=0.8,
            warmup=0.0,
            retry_timeout=0.1,
            seed=11,
            faults=FaultSchedule().crash_primary(at=0.05, cluster=0),
            verify=False,
        )
        result = scenario.run()
        system = result.system
        cluster_id = system.config.clusters[0].cluster_id
        # A non-crashed replica of cluster 0 took over as primary.
        survivors = [
            replica
            for replica in system.replicas_of(cluster_id)
            if not replica.crashed
        ]
        assert any(replica.intra.view > 0 for replica in survivors)
        # And the cluster keeps committing new transactions after failover.
        height_after_failover = max(replica.chain.height for replica in survivors)
        system.sim.run(until=1.2)
        assert max(replica.chain.height for replica in survivors) > height_after_failover
