"""End-to-end observability scenarios: the flight-recorder acceptance tests.

The recorder's contract has three halves:

* **Tracing off is free** — an untraced run and a spans-only traced run
  (``TraceSpec(gauges=False)``) are bit-identical: same event count,
  same messages, same commits, same per-replica state digests, under
  batching and under churn.  Gauge sampling adds *only* its own timer
  events: the protocol outcome is unchanged and the simulator event
  count grows by exactly ``gauge_ticks``.
* **Tracing on is complete** — a traced 5-cluster batched run yields a
  Chrome-trace export with balanced spans that passes the validator,
  and a phase table attributing >=95% of end-to-end latency.
* **Elections are observable** — view-change spans bound a liveness
  stall: when a coalition larger than ``f`` mutes during the election
  (ROADMAP residue), the stalled election shows up as *open* spans and
  the view never advances, while the control run (no mutes) closes its
  spans and installs a new view.

Pattern follows ``test_batching_scenarios.py``'s differential style.
"""

import sys

from repro.api import DeploymentSpec, FaultSchedule, Scenario, run_scenarios
from repro.common.types import ClusterId, FaultModel
from repro.obs import TraceSpec, write_chrome_trace
from repro.obs.export import chrome_trace_events
from repro.txn.workload import WorkloadConfig


def traced_scenario(
    trace=None,
    batch_size: int | None = None,
    pipeline_depth: int | None = None,
    fault_model: FaultModel = FaultModel.CRASH,
    num_clusters: int = 3,
    cross_shard_fraction: float = 0.1,
    clients: int = 24,
    duration: float = 0.6,
    seed: int = 5,
    faults: FaultSchedule | None = None,
    **overrides,
) -> Scenario:
    return Scenario(
        deployment=DeploymentSpec(
            system="sharper",
            fault_model=fault_model,
            num_clusters=num_clusters,
            batch_size=batch_size,
            pipeline_depth=pipeline_depth,
            trace=trace,
        ),
        workload=WorkloadConfig(
            cross_shard_fraction=cross_shard_fraction, accounts_per_shard=64
        ),
        clients=clients,
        duration=duration,
        seed=seed,
        faults=faults or FaultSchedule(),
        **overrides,
    )


def replica_digests(result) -> dict:
    return {
        pid: replica.store.state_digest()
        for pid, replica in result.system.replicas.items()
    }


def assert_identical(first, second) -> None:
    """Bit-identity in every observable dimension, event count included."""
    first.raise_if_failed()
    second.raise_if_failed()
    assert first.stats.committed == second.stats.committed
    assert first.stats.committed_cross == second.stats.committed_cross
    assert first.chain_heights == second.chain_heights
    assert first.total_balance == second.total_balance
    assert replica_digests(first) == replica_digests(second)
    assert (
        first.system.network.messages_sent == second.system.network.messages_sent
    )
    assert first.system.sim.processed_events == second.system.sim.processed_events


def load_validator():
    sys.path.insert(0, "tools")
    try:
        from validate_trace import validate
    finally:
        sys.path.pop(0)
    return validate


SPANS_ONLY = TraceSpec(gauges=False)


class TestTracedAcceptance:
    def test_traced_five_cluster_batched_run(self, tmp_path):
        """Acceptance: 5 clusters, batching on, full tracing — the Chrome
        export validates, spans balance, and the phase table attributes
        >=95% of end-to-end latency."""
        result = traced_scenario(
            trace=True, num_clusters=5, batch_size=8, pipeline_depth=4
        ).run()
        result.raise_if_failed()
        report = result.trace
        assert report is not None
        assert result.stats.committed > 0
        assert report.breakdown.txs > 0
        assert report.breakdown.attributed_fraction >= 0.95
        assert len(report.slot_spans) > 0
        assert report.gauge_ticks > 0
        # Per-phase table covers both lanes and renders the milestones.
        table = report.phase_table()
        assert "decided" in table and "cross_start" in table
        # The Chrome export is balanced and passes the validator.
        events = chrome_trace_events(report)
        opens = sum(1 for event in events if event["ph"] == "b")
        closes = sum(1 for event in events if event["ph"] == "e")
        assert opens == closes > 0
        path = str(tmp_path / "trace.json")
        write_chrome_trace(report, path)
        assert load_validator()(path) == []
        # Gauges made it into the export as counter tracks.
        assert any(event["ph"] == "C" for event in events)

    def test_trace_columns_ride_result_as_dict(self):
        result = traced_scenario(trace=SPANS_ONLY, duration=0.3).run()
        row = result.as_dict()
        assert row["trace_txs"] > 0
        assert row["trace_attributed"] >= 0.95
        assert "submitted" in row and "abort_rate" in row


class TestZeroOverheadOff:
    def test_spans_only_trace_is_bit_identical_plain(self):
        """A spans-only traced run takes the exact untraced event path."""
        off = traced_scenario().run()
        on = traced_scenario(trace=SPANS_ONLY).run()
        assert_identical(off, on)
        assert on.trace is not None and off.trace is None

    def test_spans_only_trace_is_bit_identical_batched(self):
        off = traced_scenario(batch_size=8, pipeline_depth=4).run()
        on = traced_scenario(
            trace=SPANS_ONLY, batch_size=8, pipeline_depth=4
        ).run()
        assert_identical(off, on)

    def test_spans_only_trace_is_bit_identical_under_churn(self):
        def faults():
            return (
                FaultSchedule()
                .crash_node(at=0.2, node_id=2)
                .recover_node(at=0.5, node_id=2)
            )

        off = traced_scenario(faults=faults(), seed=7, duration=0.8).run()
        on = traced_scenario(
            trace=SPANS_ONLY, faults=faults(), seed=7, duration=0.8
        ).run()
        assert_identical(off, on)

    def test_gauge_sampling_adds_exactly_its_own_ticks(self):
        """Gauges only read state: the protocol outcome is unchanged and
        the event count grows by exactly the sampling timer's firings."""
        off = traced_scenario().run()
        on = traced_scenario(trace=True).run()
        on.raise_if_failed()
        assert on.stats.committed == off.stats.committed
        assert on.chain_heights == off.chain_heights
        assert replica_digests(on) == replica_digests(off)
        assert on.system.network.messages_sent == off.system.network.messages_sent
        assert on.trace.gauge_ticks > 0
        assert (
            on.system.sim.processed_events
            == off.system.sim.processed_events + on.trace.gauge_ticks
        )


class TestPooledTracing:
    def test_serial_and_pooled_traced_runs_agree(self):
        """The report is picklable: pooled runs return the same trace."""
        base = traced_scenario(
            trace=True, batch_size=8, pipeline_depth=4, duration=0.3
        )
        scenarios = [base.with_seed(1), base.with_seed(2)]
        serial = run_scenarios(scenarios, jobs=1)
        pooled = run_scenarios(scenarios, jobs=2)
        for s, p in zip(serial, pooled):
            assert p.system is None  # detached across the process boundary
            assert s.stats.committed == p.stats.committed
            assert s.chain_heights == p.chain_heights
            assert p.trace is not None
            assert s.trace == p.trace


def mute_coalition_scenario(mutes: int) -> Scenario:
    """Cluster 0's primary goes silent; ``mutes`` backups additionally
    mute during the resulting election (cluster 0 is pids 0..3, f=1)."""
    faults = FaultSchedule().make_primary_byzantine(
        at=0.05, cluster=0, behavior="silent-primary"
    )
    for node in range(1, 1 + mutes):
        faults = faults.make_byzantine(
            at=0.05, node=node, behavior="mute-during-view-change"
        )
    return traced_scenario(
        trace=SPANS_ONLY,
        fault_model=FaultModel.BYZANTINE,
        clients=16,
        duration=1.2,
        retry_timeout=0.2,
        faults=faults,
    )


class TestMuteCoalitionStallsElection:
    """ROADMAP residue: adaptive mute attacks on the election itself.

    With ``f`` or fewer mutes the view change tolerates them by design;
    a coalition of *more than* ``f`` mutes (plus the silent primary)
    drops the correct electorate below quorum and stalls the election.
    The recorder bounds the stall: the suspicion opens view-change
    spans that never close.
    """

    def test_control_without_mutes_elects_a_new_view(self):
        result = mute_coalition_scenario(mutes=0).run()
        assert result.safety is not None and not result.safety.problems
        attacked = result.system.replicas_of(ClusterId(0))
        assert any(
            replica.intra.view >= 1
            for replica in attacked
            if not replica.byzantine
        )
        # The election completed: cluster 0's spans opened and closed.
        assert any(span[1] == 0 for span in result.trace.vc_spans)

    def test_coalition_beyond_f_stalls_the_election(self):
        result = mute_coalition_scenario(mutes=2).run()  # 2 mutes > f=1
        # Safe but not live: no conflicting commits anywhere.
        assert result.safety is not None and not result.safety.problems
        attacked = result.system.replicas_of(ClusterId(0))
        correct = [r for r in attacked if not r.byzantine]
        assert correct and all(r.intra.view == 0 for r in correct)
        # The stall is visible and bounded: the correct replicas' spans
        # are still open at end of run, stretching to the horizon.
        open_spans = [span for span in result.trace.open_vcs if span[1] == 0]
        assert open_spans
        assert all(opened < result.trace.end_time for *_, opened in open_spans)
        # The other clusters are unaffected and keep committing.
        assert result.stats.committed > 0
        for cluster in (1, 2):
            assert any(
                replica.log.entry_count > 0
                for replica in result.system.replicas_of(ClusterId(cluster))
            )
