"""End-to-end causal-graph scenarios: the critical-path acceptance tests.

The causal layer's contract, checked differentially against the rest of
the system:

* **Exactness** — for every committed transaction in a traced run
  (intra, cross-shard, batched, Byzantine), the reconstructed critical
  path is a contiguous causal chain from submit to reply: consecutive
  edges share their node event id and timestamp *exactly*, and the
  path total equals the latency the metrics layer recorded for the
  same transaction with float equality, not tolerance.
* **Deciding votes match engine bookkeeping** — every deciding-vote row
  the recorder emits names a voter the observing replica's own
  ``QuorumTracker`` counted for that key.
* **Tracing stays free** — a causal-traced run is protocol-identical to
  an untraced run; ``--trace-sample N`` keeps that bit-identity while
  recording fewer phase events.
* **Crashes cut chains cleanly** — spans open at a crash are exported
  as ``open: true`` (never mis-closed), transactions cut by the crash
  simply have no reply and are excluded, and the surviving paths stay
  exact; the flow-enabled export still validates.

Pattern follows ``test_obs_scenarios.py``'s differential style.
"""

import json

from repro.api import FaultSchedule
from repro.common.types import FaultModel
from repro.obs import TraceSpec, write_chrome_trace

from test_obs_scenarios import (
    SPANS_ONLY,
    assert_identical,
    load_validator,
    traced_scenario,
)


def latency_samples(result) -> dict:
    """The metrics layer's per-transaction samples, keyed by tx id."""
    return {
        sample.tx_id: sample
        for sample in result.system.clients[0].metrics.samples
    }


def assert_paths_exact(result) -> tuple:
    """Every critical path is contiguous and equals the measured latency."""
    report = result.trace
    paths = report.critical_paths()
    assert paths, "traced run produced no critical paths"
    samples = latency_samples(result)
    matched = 0
    for path in paths:
        edges = path.edges
        for first, second in zip(edges, edges[1:]):
            assert first.dst_eid == second.src_eid
            assert first.t1 == second.t0  # shared node: exact, not approx
        for edge in edges:
            assert edge.t1 - edge.t0 >= 0.0
        assert edges[0].src_eid < edges[-1].dst_eid
        sample = samples.get(path.tx)
        if sample is None:
            continue  # committed outside the measurement window
        matched += 1
        assert path.total == sample.latency  # identical float expression
    assert matched > 0
    return paths


class TestCriticalPathExactness:
    def test_intra_paths_are_exact_and_complete(self):
        result = traced_scenario(trace=SPANS_ONLY, cross_shard_fraction=0.0).run()
        paths = assert_paths_exact(result)
        # Unbatched intra-shard chains never leave their dispatch chain:
        # every path walks clean back to its submit.
        assert all(path.complete for path in paths)
        assert all(not path.cross for path in paths)
        summary = result.trace.critical
        assert summary.txs == len(paths)
        assert summary.complete == len(paths)
        assert summary.wire_share > 0.5  # latency is dominated by the wire

    def test_cross_shard_paths_are_exact(self):
        result = traced_scenario(trace=SPANS_ONLY, cross_shard_fraction=0.3).run()
        paths = assert_paths_exact(result)
        assert any(path.cross for path in paths)
        # Slot-ordered apply can hand a commit to another dispatch; those
        # chains clip at submit and surface the gap as a wait edge.
        clipped = [path for path in paths if not path.complete]
        for path in clipped:
            assert path.edges[0].kind == "wait"
        assert result.trace.critical.cross_avg_ms > 0.0

    def test_batched_paths_are_exact_with_wait_edges(self):
        result = traced_scenario(
            trace=SPANS_ONLY, batch_size=8, pipeline_depth=4
        ).run()
        paths = assert_paths_exact(result)
        # Requests queued behind the pipeline window are charged a
        # synthetic wait edge; under batch=8 at 24 clients some must be.
        assert any(
            not path.complete and path.edges[0].kind == "wait" for path in paths
        )
        assert result.trace.critical.wait_share > 0.0

    def test_byzantine_paths_are_exact(self):
        result = traced_scenario(
            trace=SPANS_ONLY,
            fault_model=FaultModel.BYZANTINE,
            num_clusters=2,
            cross_shard_fraction=0.2,
        ).run()
        assert_paths_exact(result)


class TestDecidingVotes:
    def test_crash_deciding_votes_match_paxos_bookkeeping(self):
        result = traced_scenario(trace=SPANS_ONLY, cross_shard_fraction=0.0).run()
        rows = [row for row in result.trace.deciding if row[1] == "accept"]
        assert rows
        for pid, _kind, key, voter, _t, _lag in rows:
            replica = result.system.replicas[pid]
            assert voter in replica.intra._accepted.voters(key)
            assert replica.intra._accepted.reached(key)
        # Every deciding row is observed at the slot's primary, and the
        # recorder closed the key on the vote that flipped the quorum.
        assert len(rows) == result.trace.critical.txs

    def test_byzantine_deciding_votes_match_pbft_bookkeeping(self):
        result = traced_scenario(
            trace=SPANS_ONLY,
            fault_model=FaultModel.BYZANTINE,
            num_clusters=2,
            cross_shard_fraction=0.0,
        ).run()
        prepares = [row for row in result.trace.deciding if row[1] == "prepare"]
        commits = [row for row in result.trace.deciding if row[1] == "commit"]
        assert prepares and commits
        for rows, tracker in ((prepares, "_prepares"), (commits, "_commits")):
            for pid, _kind, key, voter, _t, _lag in rows:
                replica = result.system.replicas[pid]
                assert voter in getattr(replica.intra, tracker).voters(key)

    def test_cross_shard_deciding_votes_recorded(self):
        result = traced_scenario(trace=SPANS_ONLY, cross_shard_fraction=0.3).run()
        kinds = {row[1] for row in result.trace.deciding}
        assert "cross_accept" in kinds
        straggler = result.trace.straggler_table()
        assert "cross_accept" in straggler

    def test_straggler_lags_are_nonnegative(self):
        result = traced_scenario(trace=SPANS_ONLY, cross_shard_fraction=0.2).run()
        for _pid, _kind, _key, _voter, _t, lag in result.trace.deciding:
            # The deciding vote arrives at or after the median by
            # definition (it is the last vote of its quorum).
            assert lag >= 0.0


class TestSampling:
    def test_sampled_run_is_bit_identical_to_untraced(self):
        untraced = traced_scenario(trace=None).run()
        sampled = traced_scenario(
            trace=TraceSpec(gauges=False, sample=4)
        ).run()
        assert_identical(untraced, sampled)

    def test_sampling_records_fewer_phase_events(self):
        full = traced_scenario(trace=SPANS_ONLY).run()
        sampled = traced_scenario(trace=TraceSpec(gauges=False, sample=4)).run()
        assert 0 < len(sampled.trace.events) < len(full.trace.events) / 2
        # Sampled chains still reconstruct exactly.
        assert_paths_exact(sampled)

    def test_causal_off_skips_graph_but_keeps_phases(self):
        result = traced_scenario(trace=TraceSpec(gauges=False, causal=False)).run()
        assert result.trace.critical is None
        assert result.trace.causal == ()
        assert result.trace.deciding == ()
        assert result.trace.events
        assert result.trace.critpath_columns() == {}
        assert "(no causal data recorded)" in result.trace.critical_table()


class TestCrashCut:
    def crashed_run(self):
        faults = FaultSchedule()
        faults.crash_node(at=0.3, node_id=1)
        return traced_scenario(
            trace=SPANS_ONLY, cross_shard_fraction=0.1, faults=faults,
            verify=False,
        ).run()

    def test_open_spans_flagged_open_not_misclosed(self, tmp_path):
        faults = FaultSchedule()
        faults.crash_primary(at=0.3, cluster=0)
        result = traced_scenario(
            trace=SPANS_ONLY, faults=faults, verify=False
        ).run()
        report = result.trace
        # The crashed primary (and replicas waiting on it) hold slots
        # that never applied: they surface as open, never as closed.
        assert report.open_slots or report.open_vcs
        open_keys = {(pid, slot) for pid, _c, slot, _t in report.open_slots}
        closed_keys = {(pid, slot) for pid, _c, slot, _t0, _t1 in report.slot_spans}
        assert not (open_keys & closed_keys)
        path = tmp_path / "crash_trace.json"
        write_chrome_trace(report, str(path))
        payload = json.loads(path.read_text())
        open_closes = [
            event
            for event in payload["traceEvents"]
            if event["ph"] == "e" and event.get("args", {}).get("open")
        ]
        assert open_closes
        assert load_validator()(str(path)) == []

    def test_chains_cut_by_crash_stay_exact(self):
        result = self.crashed_run()
        paths = assert_paths_exact(result)
        # In-flight transactions at the crash have no reply event and
        # are never walked: every reconstructed path still telescopes.
        tx_with_paths = {path.tx for path in paths}
        submitted = {
            tx for _t, tx, phase, _pid in result.trace.events if phase == "submit"
        }
        assert tx_with_paths <= submitted

    def test_no_recv_nodes_at_crashed_pid_after_crash(self):
        result = self.crashed_run()
        for _eid, _parent, t, kind, pid, _label in result.trace.causal:
            if pid == 1 and kind == "recv":
                assert t <= 0.3 + 1e-9

    def test_crashed_trace_flow_export_validates(self, tmp_path):
        result = self.crashed_run()
        path = tmp_path / "trace.json"
        write_chrome_trace(result.trace, str(path))
        assert load_validator()(str(path)) == []
        payload = json.loads(path.read_text())
        assert any(
            event["ph"] == "f" and event.get("cat") == "flow"
            for event in payload["traceEvents"]
        )
