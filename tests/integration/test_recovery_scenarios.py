"""End-to-end recovery scenarios: bounded logs, churn, determinism.

Integration acceptance for the recovery subsystem:

* a long run with checkpointing decides many multiples of the interval
  yet keeps every replica's ordering log bounded by ``2 x interval``,
  while the identical run without checkpointing grows with the run;
* a replica that crashes and recovers mid-run state-transfers the
  missed (and garbage-collected) slots, reaches the cluster's applied
  height, and participates in later quorums;
* everything stays bit-identical between serial and pooled execution,
  and the safety auditor passes across truncation.
"""

import pytest

from repro.api import DeploymentSpec, FaultSchedule, Scenario, run_scenarios
from repro.bench.experiments import churn_scenario, longrun_scenario
from repro.common.types import ClusterId, FaultModel
from repro.txn.workload import WorkloadConfig


def quick_longrun(checkpoint_interval: int, **overrides) -> Scenario:
    defaults = dict(checkpoint_interval=checkpoint_interval, duration=0.8, clients=8)
    defaults.update(overrides)
    return longrun_scenario(**defaults)


class TestBoundedMemory:
    def test_checkpointing_bounds_the_ordering_log(self):
        interval = 25
        result = quick_longrun(interval).run()
        result.raise_if_failed()
        decided = min(result.chain_heights.values())
        assert decided >= 20 * interval, "run too short to prove anything"
        recovery = result.recovery
        assert recovery.checkpoints_stable > 0
        assert recovery.peak_log_entries <= 2 * interval
        assert recovery.entries_truncated > 0
        assert recovery.blocks_pruned > 0
        assert recovery.divergent_checkpoints == 0
        # Every replica's live log is bounded, not just the peak gauge.
        for replica in result.system.replicas.values():
            assert replica.log.entry_count <= 2 * interval
            assert replica.log.peak_entry_count <= 2 * interval

    def test_without_checkpointing_the_log_grows_with_the_run(self):
        result = quick_longrun(0).run()
        result.raise_if_failed()
        assert result.recovery.checkpoints_stable == 0
        assert result.recovery.peak_log_entries >= min(result.chain_heights.values())

    def test_byzantine_deployment_checkpoints_too(self):
        interval = 25
        result = quick_longrun(
            interval, fault_model=FaultModel.BYZANTINE, duration=0.6
        ).run()
        result.raise_if_failed()
        assert result.recovery.checkpoints_stable > 0
        assert result.recovery.peak_log_entries <= 2 * interval


class TestChurnRecovery:
    def test_crashed_replica_recovers_catches_up_and_serves(self):
        """Satellite acceptance: recover-after-crash liveness.

        The replica crashes mid-run, its peers checkpoint past the slots
        it missed, and on recovery it state-transfers and rejoins: its
        applied height must reach the cluster's, and it must have applied
        slots decided *after* its recovery (participation in later
        quorums, not just a one-shot copy).
        """
        scenario = churn_scenario(checkpoint_interval=25, seed=3)
        node = scenario.faults.events[0].node_id
        result = scenario.run()
        result.raise_if_failed()
        recovered = result.system.replicas[node]
        peers = [
            replica
            for pid, replica in result.system.replicas.items()
            if replica.cluster_id == recovered.cluster_id and pid != node
        ]
        assert not recovered.crashed
        assert result.recovery.state_transfers_completed >= 1
        # Caught up to the cluster's applied height exactly.
        peer_height = max(replica.chain.height for replica in peers)
        assert recovered.chain.height == peer_height
        assert recovered.log.next_apply == max(r.log.next_apply for r in peers)
        # It kept applying past the snapshot it installed: slots decided
        # after rejoin went through its ordinary consensus path.
        assert recovered.chain.height > result.recovery.max_stable_seq - 25
        # Safety holds across truncation and replay.
        assert result.safety is not None and result.safety.ok, result.safety.problems

    def test_recovery_works_without_checkpoints_via_full_replay(self):
        scenario = churn_scenario(checkpoint_interval=0, seed=5, duration=0.6)
        node = scenario.faults.events[0].node_id
        result = scenario.run()
        result.raise_if_failed()
        recovered = result.system.replicas[node]
        peers = [
            replica
            for pid, replica in result.system.replicas.items()
            if replica.cluster_id == recovered.cluster_id and pid != node
        ]
        assert recovered.chain.height == max(r.chain.height for r in peers)
        # No snapshot existed; the suffix replay alone carried catch-up.
        assert result.recovery.snapshots_installed == 0
        assert result.recovery.state_transfers_completed >= 1

    def test_byzantine_churn_passes_the_safety_auditor(self):
        scenario = churn_scenario(
            checkpoint_interval=20, fault_model=FaultModel.BYZANTINE, seed=7,
            node=2, duration=0.7,
        )
        result = scenario.run()
        result.raise_if_failed()
        node = scenario.faults.events[0].node_id
        recovered = result.system.replicas[node]
        peers = [
            replica
            for pid, replica in result.system.replicas.items()
            if replica.cluster_id == recovered.cluster_id and pid != node
        ]
        assert recovered.chain.height == max(r.chain.height for r in peers)
        assert result.safety is not None and result.safety.ok, result.safety.problems


class TestDeterminism:
    def test_recovery_runs_are_bit_identical_serial_vs_pooled(self):
        scenarios = [
            quick_longrun(25, duration=0.5, seed=11),
            churn_scenario(checkpoint_interval=20, seed=11, duration=0.6),
        ]
        serial = run_scenarios(scenarios, jobs=1)
        pooled = run_scenarios(scenarios, jobs=2)
        for one, two in zip(serial, pooled):
            assert one.as_dict() == two.as_dict()
            assert one.recovery.__dict__ == two.recovery.__dict__
            assert one.chain_heights == two.chain_heights


class TestLateCommitsSurfaced:
    def test_late_commits_flow_into_stats_and_reports(self):
        result = quick_longrun(0, duration=0.3).run()
        assert result.stats.late_commits == 0  # faultless: no races
        row = result.as_dict()
        assert "late_commits" in row
        assert row["late_commits"] == 0

    def test_summary_mentions_recovery_when_active(self):
        result = quick_longrun(25, duration=0.4).run()
        assert "recovery" in result.summary()
        assert "checkpoints" in result.summary()
