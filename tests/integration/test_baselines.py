"""Integration tests for the baseline systems (APR, FPaxos, FaB, AHL).

Every run goes through the declarative :class:`repro.api.Scenario`
surface with the baselines resolved by registry name, mirroring how the
benchmark harness drives them.
"""

import pytest

from repro.api import DeploymentSpec, Scenario
from repro.common.types import FaultModel
from repro.txn.workload import WorkloadConfig


def run(system_name, fault_model, cross_fraction, clients=12, duration=0.15, seed=5):
    scenario = Scenario(
        deployment=DeploymentSpec(system=system_name, fault_model=fault_model),
        workload=WorkloadConfig(
            cross_shard_fraction=cross_fraction, accounts_per_shard=64, num_clients=16
        ),
        clients=clients,
        duration=duration,
        warmup=0.02,
        seed=seed,
    )
    result = scenario.run()
    return result.system, result.stats


class TestActivePassive:
    @pytest.mark.parametrize("fault_model", [FaultModel.CRASH, FaultModel.BYZANTINE])
    def test_commits_and_stays_consistent(self, fault_model):
        system, stats = run("apr", fault_model, cross_fraction=0.5)
        assert stats.committed > 50
        assert system.audit().ok
        assert system.total_balance() == system.expected_total_balance()

    def test_passive_replicas_follow_the_actives(self):
        system, stats = run("apr", FaultModel.CRASH, cross_fraction=0.0)
        primary_height = system.primary().chain.height
        assert primary_height > 0
        for passive in system.passives.values():
            # Passive replicas lag by at most the in-flight window.
            assert passive.applied >= primary_height * 0.9

    def test_active_group_sizes_match_paper(self):
        crash, _ = run("apr", FaultModel.CRASH, 0.0, clients=2, duration=0.02)
        byz, _ = run("apr", FaultModel.BYZANTINE, 0.0, clients=2, duration=0.02)
        assert crash.active_cluster.size == 3 and len(crash.passives) == 9
        assert byz.active_cluster.size == 4 and len(byz.passives) == 12


class TestFastConsensus:
    @pytest.mark.parametrize("fault_model", [FaultModel.CRASH, FaultModel.BYZANTINE])
    def test_commits_and_stays_consistent(self, fault_model):
        system, stats = run("fast", fault_model, cross_fraction=0.5)
        assert stats.committed > 50
        assert system.audit().ok
        assert system.total_balance() == system.expected_total_balance()

    def test_group_sizes_match_paper(self):
        crash, _ = run("fast", FaultModel.CRASH, 0.0, clients=2, duration=0.02)
        byz, _ = run("fast", FaultModel.BYZANTINE, 0.0, clients=2, duration=0.02)
        assert crash.active_cluster.size == 4 and len(crash.passives) == 8
        assert byz.active_cluster.size == 6 and len(byz.passives) == 10

    def test_fast_path_has_lower_latency_than_apr(self):
        _, fast = run("fast", FaultModel.CRASH, 0.0, clients=8)
        _, apr = run("apr", FaultModel.CRASH, 0.0, clients=8)
        assert fast.avg_latency <= apr.avg_latency * 1.05


class TestAHL:
    @pytest.mark.parametrize("fault_model", [FaultModel.CRASH, FaultModel.BYZANTINE])
    def test_commits_and_stays_consistent(self, fault_model):
        system, stats = run("ahl", fault_model, cross_fraction=0.3)
        assert stats.committed > 50
        assert stats.committed_cross > 0
        assert system.audit().ok
        assert system.total_balance() == system.expected_total_balance()

    def test_reference_committee_coordinates_cross_shard_txs(self):
        system, stats = run("ahl", FaultModel.CRASH, cross_fraction=1.0)
        assert system.reference_committee_primary().coordinated > 0
        assert stats.committed_cross == stats.committed

    def test_cross_shard_latency_higher_than_sharper(self):
        _, ahl = run("ahl", FaultModel.CRASH, cross_fraction=1.0, clients=8)
        _, sharper = run("sharper", FaultModel.CRASH, cross_fraction=1.0, clients=8)
        assert ahl.avg_latency_cross > sharper.avg_latency_cross

    def test_intra_shard_path_matches_sharper(self):
        _, ahl = run("ahl", FaultModel.CRASH, cross_fraction=0.0, clients=16)
        _, sharper = run("sharper", FaultModel.CRASH, cross_fraction=0.0, clients=16)
        assert ahl.throughput == pytest.approx(sharper.throughput, rel=0.2)
