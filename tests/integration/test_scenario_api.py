"""Integration tests for the Scenario API (repro.api).

Covers the declarative lifecycle (build -> run -> result), the
equivalence of the thin harness wrappers, and fault schedules executed
as simulator events.
"""

import dataclasses

import pytest

from repro.api import (
    CrashPrimary,
    DeploymentSpec,
    FaultSchedule,
    Scenario,
)
from repro.bench.harness import ExperimentSpec, run_point
from repro.common.config import ProtocolTuning, SystemConfig
from repro.common.errors import ConfigurationError, UnknownSystemError
from repro.common.types import FaultModel
from repro.core.system import SharPerSystem
from repro.txn.workload import WorkloadConfig

QUICK = dict(duration=0.1, warmup=0.02, clients=8, seed=5)
SMALL_WORKLOAD = WorkloadConfig(
    cross_shard_fraction=0.2, accounts_per_shard=64, num_clients=16
)


class TestScenarioRoundTrip:
    def test_build_run_result(self):
        scenario = Scenario(
            deployment=DeploymentSpec(system="sharper", fault_model=FaultModel.CRASH),
            workload=SMALL_WORKLOAD,
            **QUICK,
        )
        system = scenario.build_system()
        assert isinstance(system, SharPerSystem)

        result = scenario.run()
        assert result.scenario is scenario
        assert result.stats.committed > 0
        assert result.stats.throughput > 0
        assert result.audit is not None and result.audit.ok
        assert result.balance_conserved
        assert result.ok
        result.raise_if_failed()
        # One chain height per cluster, all making progress.
        assert len(result.chain_heights) == 4
        assert all(height > 0 for height in result.chain_heights.values())
        # The drained system is handed back for inspection.
        assert result.idle_time is not None and result.idle_time >= result.end_time

    def test_runs_are_deterministic(self):
        scenario = Scenario(
            deployment=DeploymentSpec(system="sharper"), workload=SMALL_WORKLOAD, **QUICK
        )
        first = scenario.run()
        second = scenario.run()
        assert first.stats == second.stats
        assert first.chain_heights == second.chain_heights

    def test_verify_false_skips_audit(self):
        scenario = Scenario(
            deployment=DeploymentSpec(system="sharper"),
            workload=SMALL_WORKLOAD,
            verify=False,
            **QUICK,
        )
        result = scenario.run()
        assert result.audit is None
        assert result.idle_time is None
        assert result.ok  # no audit -> nothing failed
        result.raise_if_failed()

    def test_unknown_system_rejected_at_build(self):
        scenario = Scenario(deployment=DeploymentSpec(system="missing"), **QUICK)
        with pytest.raises(UnknownSystemError):
            scenario.build_system()

    def test_explicit_config_override(self):
        config = SystemConfig.build(2, FaultModel.CRASH, seed=3)
        scenario = Scenario(
            deployment=DeploymentSpec(system="sharper", config=config),
            workload=SMALL_WORKLOAD,
            **QUICK,
        )
        system = scenario.build_system()
        assert system.config is config
        assert len(scenario.run().chain_heights) == 2

    def test_with_clients_variation(self):
        scenario = Scenario(
            deployment=DeploymentSpec(system="sharper"), workload=SMALL_WORKLOAD, **QUICK
        )
        heavier = scenario.with_clients(16)
        assert heavier.clients == 16
        assert heavier.deployment is scenario.deployment

    def test_result_as_dict_is_flat(self):
        scenario = Scenario(
            name="dict-check",
            deployment=DeploymentSpec(system="sharper"),
            workload=SMALL_WORKLOAD,
            **QUICK,
        )
        row = scenario.run().as_dict()
        assert row["scenario"] == "dict-check"
        assert row["audit_ok"] is True
        assert row["height_p0"] > 0


class TestHarnessWrappers:
    def test_run_point_matches_direct_scenario_run(self):
        spec = ExperimentSpec(
            system="sharper", fault_model=FaultModel.CRASH,
            cross_shard_fraction=0.2, duration=0.08, warmup=0.02,
        )
        via_wrapper = run_point(spec, clients=8)
        via_scenario = spec.to_scenario(8).run().stats
        assert via_wrapper == via_scenario

    def test_every_registered_builtin_runs_through_a_scenario(self):
        for name in ("sharper", "ahl", "apr", "fast"):
            scenario = Scenario(
                deployment=DeploymentSpec(system=name, fault_model=FaultModel.CRASH),
                workload=SMALL_WORKLOAD,
                duration=0.05,
                warmup=0.01,
                clients=4,
            )
            result = scenario.run()
            assert result.stats.committed > 0, name
            assert result.ok, name


class TestFaultSchedules:
    def test_builder_keeps_events_sorted(self):
        schedule = (
            FaultSchedule()
            .heal(at=0.3)
            .crash_primary(at=0.1, cluster=0)
            .partition(at=0.2, groups=[[0], [1]])
        )
        assert len(schedule) == 3
        assert [event.time for event in schedule] == [0.1, 0.2, 0.3]
        assert isinstance(schedule.events[0], CrashPrimary)

    def test_negative_time_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultSchedule().crash_node(at=-1.0, node_id=0)

    def test_event_past_the_run_horizon_rejected(self):
        # verify=False: nothing runs past `duration`, so a later event
        # would silently never execute — rejected up front.
        scenario = Scenario(
            deployment=DeploymentSpec(system="sharper", num_clusters=2),
            workload=SMALL_WORKLOAD,
            faults=FaultSchedule().crash_node(at=0.5, node_id=2),
            verify=False,
            **QUICK,  # duration=0.1
        )
        with pytest.raises(ConfigurationError, match="horizon"):
            scenario.run()

    def test_event_in_the_drain_window_allowed(self):
        # With verify=True the drain keeps the simulator running, so a
        # heal scheduled after `duration` (e.g. to let the audit pass)
        # is legitimate and executes.
        scenario = Scenario(
            deployment=DeploymentSpec(system="sharper", num_clusters=2),
            workload=WorkloadConfig(
                cross_shard_fraction=0.0, accounts_per_shard=64, num_clients=8
            ),
            clients=4,
            duration=0.1,
            warmup=0.02,
            seed=13,
            faults=FaultSchedule().partition(at=0.05, groups=[[0], [1]]).heal(at=0.3),
        )
        result = scenario.run()
        assert result.system.network._partition_of is None  # heal ran in drain
        assert result.audit.ok

    def test_scheduled_primary_crash_triggers_view_change_and_audit_passes(self):
        scenario = Scenario(
            deployment=DeploymentSpec(
                system="sharper",
                fault_model=FaultModel.CRASH,
                num_clusters=2,
                tuning=ProtocolTuning(view_change_timeout=0.05),
            ),
            workload=WorkloadConfig(
                cross_shard_fraction=0.0, accounts_per_shard=64, num_clients=8
            ),
            clients=4,
            duration=1.0,
            warmup=0.05,
            retry_timeout=0.1,
            seed=11,
            faults=FaultSchedule().crash_primary(at=0.05, cluster=0),
        )
        result = scenario.run()
        system = result.system
        victim = system.config.clusters[0]
        # The initial primary is down, a survivor moved to a higher view.
        assert system.replicas[int(victim.primary)].crashed
        survivors = [
            replica for replica in system.replicas_of(victim.cluster_id)
            if not replica.crashed
        ]
        assert any(replica.intra.view > 0 for replica in survivors)
        # The cluster kept committing and the audit still passes.
        assert result.chain_heights[victim.cluster_id] > 0
        assert result.audit.ok, result.audit.problems
        assert result.balance_conserved

    def test_scheduled_node_crash_and_recovery(self):
        scenario = Scenario(
            deployment=DeploymentSpec(
                system="sharper", fault_model=FaultModel.CRASH, num_clusters=2
            ),
            workload=WorkloadConfig(
                cross_shard_fraction=0.0, accounts_per_shard=64, num_clients=8
            ),
            clients=4,
            duration=0.2,
            warmup=0.02,
            seed=7,
            faults=FaultSchedule().crash_node(at=0.05, node_id=2).recover_node(
                at=0.1, node_id=2
            ),
        )
        result = scenario.run()
        assert not result.system.replicas[2].crashed
        assert result.stats.committed > 0
        assert result.audit.ok

    def test_partition_and_heal_between_clusters(self):
        # Partition the two clusters apart: intra-shard traffic keeps
        # committing, and after healing the audit still passes.
        scenario = Scenario(
            deployment=DeploymentSpec(
                system="sharper", fault_model=FaultModel.CRASH, num_clusters=2
            ),
            workload=WorkloadConfig(
                cross_shard_fraction=0.0, accounts_per_shard=64, num_clients=8
            ),
            clients=4,
            duration=0.3,
            warmup=0.02,
            seed=13,
            faults=FaultSchedule().partition(at=0.1, groups=[[0], [1]]).heal(at=0.2),
        )
        result = scenario.run()
        assert result.stats.committed > 0
        assert result.audit.ok, result.audit.problems

    def test_crash_unknown_node_raises_at_apply_time(self):
        scenario = Scenario(
            deployment=DeploymentSpec(system="sharper", num_clusters=2),
            workload=SMALL_WORKLOAD,
            faults=FaultSchedule().crash_node(at=0.01, node_id=999),
            **QUICK,
        )
        with pytest.raises(ConfigurationError):
            scenario.run()
