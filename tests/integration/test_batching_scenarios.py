"""End-to-end batching scenarios: the differential acceptance tests.

The batching pipeline's contract has two halves:

* **batch=1 is bit-identical** — with batching disabled (the default),
  every run is indistinguishable from the pre-batching tree: same event
  count, same messages, same commits, same per-replica state digests,
  including under primary-crash view changes.  The pipeline-depth knob
  is unenforced at batch=1 and must not perturb anything either.
* **batch>1 is per-transaction equivalent** — batched runs order the
  same client traffic through fewer, fatter slots: every audit passes,
  balances are conserved, replies stay per-request, and the safety
  auditor holds under Byzantine behaviour and view changes mid-batch.

Pattern follows ``test_storage_scenarios.py``'s differential style.
"""

import pytest

from repro.api import DeploymentSpec, FaultSchedule, Scenario, run_scenarios
from repro.common.types import ClusterId, FaultModel
from repro.txn.workload import WorkloadConfig


def batching_scenario(
    batch_size: int | None = None,
    pipeline_depth: int | None = None,
    fault_model: FaultModel = FaultModel.CRASH,
    cross_shard_fraction: float = 0.1,
    clients: int = 24,
    duration: float = 0.6,
    seed: int = 5,
    faults: FaultSchedule | None = None,
    **overrides,
) -> Scenario:
    return Scenario(
        deployment=DeploymentSpec(
            system="sharper",
            fault_model=fault_model,
            num_clusters=3,
            batch_size=batch_size,
            pipeline_depth=pipeline_depth,
        ),
        workload=WorkloadConfig(
            cross_shard_fraction=cross_shard_fraction, accounts_per_shard=64
        ),
        clients=clients,
        duration=duration,
        seed=seed,
        faults=faults or FaultSchedule(),
        **overrides,
    )


def replica_digests(result) -> dict:
    return {
        pid: replica.store.state_digest()
        for pid, replica in result.system.replicas.items()
    }


def batcher_totals(result) -> dict:
    """Summed BatchPipeline counters across every armed replica."""
    totals: dict[str, int] = {}
    for replica in result.system.replicas.values():
        batcher = getattr(replica, "batcher", None)
        if batcher is None:
            continue
        for key, value in batcher.stats().items():
            totals[key] = totals.get(key, 0) + value
        totals["max_batch"] = max(
            totals.get("max_batch", 0), batcher.max_batch
        )
    return totals


def assert_identical(first, second) -> None:
    first.raise_if_failed()
    second.raise_if_failed()
    assert first.stats.committed == second.stats.committed
    assert first.stats.committed_cross == second.stats.committed_cross
    assert first.chain_heights == second.chain_heights
    assert first.total_balance == second.total_balance
    assert replica_digests(first) == replica_digests(second)
    assert (
        first.system.network.messages_sent == second.system.network.messages_sent
    )
    assert first.system.sim.processed_events == second.system.sim.processed_events


class TestBatchOneBitIdentical:
    def test_batch_one_identical_to_default(self):
        """Acceptance: batch=1/depth=1 is the pre-batching tree, bit for bit."""
        default = batching_scenario().run()
        explicit = batching_scenario(batch_size=1, pipeline_depth=1).run()
        assert_identical(default, explicit)
        # Batching disabled means the pipeline is never even constructed.
        assert all(
            replica.batcher is None
            for replica in explicit.system.replicas.values()
        )

    def test_pipeline_depth_is_inert_at_batch_one(self):
        """The window is unenforced when batching is off: the legacy
        behaviour *is* an unbounded pipeline of single-request slots."""
        shallow = batching_scenario(batch_size=1, pipeline_depth=1).run()
        deep = batching_scenario(batch_size=1, pipeline_depth=256).run()
        assert_identical(shallow, deep)

    def test_batch_one_identical_under_primary_crash(self):
        """Bit-identity must survive a view change mid-run."""
        def faults():
            return FaultSchedule().crash_primary(at=0.2, cluster=0)

        default = batching_scenario(faults=faults(), seed=9).run()
        explicit = batching_scenario(
            batch_size=1, pipeline_depth=1, faults=faults(), seed=9
        ).run()
        assert_identical(default, explicit)

    def test_batch_one_identical_byzantine(self):
        default = batching_scenario(fault_model=FaultModel.BYZANTINE, seed=3).run()
        explicit = batching_scenario(
            batch_size=1, pipeline_depth=1, fault_model=FaultModel.BYZANTINE, seed=3
        ).run()
        assert_identical(default, explicit)


class TestBatchedPerTxEquivalent:
    def test_batched_run_is_per_tx_equivalent(self):
        """Batched ordering changes slots, never transaction semantics."""
        unbatched = batching_scenario().run()
        batched = batching_scenario(batch_size=8, pipeline_depth=4).run()
        unbatched.raise_if_failed()
        batched.raise_if_failed()
        # Same minted money, conserved; audits green on both sides.
        assert batched.total_balance == unbatched.total_balance
        assert batched.stats.committed > 0
        assert batched.stats.committed_cross > 0
        # Batches genuinely formed (the run was loaded enough to chunk).
        totals = batcher_totals(batched)
        assert totals["batches_proposed"] > 0
        assert totals["max_batch"] > 1
        assert totals["batched_requests"] > totals["batches_proposed"]
        # Fewer slots than transactions: the chains are shorter even
        # though the committed traffic is comparable.
        assert sum(batched.chain_heights.values()) < sum(
            unbatched.chain_heights.values()
        )

    def test_batched_cross_shard_commits_atomically(self):
        result = batching_scenario(
            batch_size=8, pipeline_depth=4, cross_shard_fraction=0.3, seed=11
        ).run()
        result.raise_if_failed()
        assert result.stats.committed_cross > 0
        assert batcher_totals(result)["batches_proposed"] > 0

    def test_batched_run_survives_primary_crash(self):
        """View change mid-batch: the window resets, queues re-route, and
        the cluster keeps committing under the new primary."""
        result = batching_scenario(
            batch_size=8,
            pipeline_depth=4,
            faults=FaultSchedule().crash_primary(at=0.2, cluster=0),
            seed=9,
            duration=0.8,
        ).run()
        result.raise_if_failed()
        attacked = result.system.replicas_of(ClusterId(0))
        survivors = [replica for replica in attacked if not replica.crashed]
        assert any(replica.intra.view >= 1 for replica in survivors)
        totals = batcher_totals(result)
        assert totals["view_resets"] > 0
        assert totals["batches_proposed"] > 0
        assert all(height > 0 for height in result.chain_heights.values())

    def test_batched_byzantine_passes_the_safety_audit(self):
        """Acceptance: SafetyAuditor holds with batching enabled while a
        silent primary forces a view change mid-batch."""
        result = batching_scenario(
            batch_size=8,
            pipeline_depth=4,
            fault_model=FaultModel.BYZANTINE,
            clients=16,
            duration=1.2,
            # Short client retry: a silent primary leaves backups nothing
            # to monitor, so suspicion starts from a retry reaching one.
            retry_timeout=0.2,
            faults=FaultSchedule().make_primary_byzantine(
                at=0.05, cluster=0, behavior="silent-primary"
            ),
        ).run()
        assert result.safety is not None
        assert result.ok, (
            (result.audit.problems if result.audit else [])
            + result.safety.problems
        )
        attacked = result.system.replicas_of(ClusterId(0))
        assert any(
            replica.intra.view >= 1
            for replica in attacked
            if not replica.byzantine
        )
        assert batcher_totals(result)["batches_proposed"] > 0

    def test_batched_checkpointing_and_recovery(self):
        """Batching composes with checkpoints, GC, and state transfer."""
        scenario = batching_scenario(
            batch_size=8,
            pipeline_depth=4,
            faults=FaultSchedule()
            .crash_node(at=0.2, node_id=2)
            .recover_node(at=0.5, node_id=2),
            seed=7,
            duration=0.8,
        )
        scenario = Scenario(
            deployment=DeploymentSpec(
                system="sharper",
                fault_model=FaultModel.CRASH,
                num_clusters=3,
                batch_size=8,
                pipeline_depth=4,
                checkpoint_interval=20,
            ),
            workload=scenario.workload,
            clients=scenario.clients,
            duration=scenario.duration,
            seed=scenario.seed,
            faults=scenario.faults,
        )
        result = scenario.run()
        result.raise_if_failed()
        assert result.recovery is not None
        assert result.recovery.state_transfers_completed > 0
        assert result.recovery.checkpoints_stable > 0
        assert batcher_totals(result)["batches_proposed"] > 0


class TestDeterminism:
    def test_batched_runs_are_bit_identical_per_seed(self):
        first = batching_scenario(batch_size=8, pipeline_depth=4, seed=4).run()
        second = batching_scenario(batch_size=8, pipeline_depth=4, seed=4).run()
        assert first.stats.committed == second.stats.committed
        assert first.chain_heights == second.chain_heights
        assert replica_digests(first) == replica_digests(second)
        assert first.system.sim.processed_events == second.system.sim.processed_events

    def test_serial_and_pooled_batched_runs_agree(self):
        """Acceptance: serial vs pooled bit-identity holds with batching."""
        base = batching_scenario(batch_size=8, pipeline_depth=4, duration=0.3)
        scenarios = [base.with_seed(1), base.with_seed(2)]
        serial = run_scenarios(scenarios, jobs=1)
        pooled = run_scenarios(scenarios, jobs=2)
        for s, p in zip(serial, pooled):
            assert p.system is None  # detached across the process boundary
            assert s.stats.committed == p.stats.committed
            assert s.stats.committed_cross == p.stats.committed_cross
            assert s.chain_heights == p.chain_heights
            assert s.total_balance == p.total_balance
