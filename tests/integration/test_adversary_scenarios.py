"""Integration tests: SharPer under scripted Byzantine behaviour.

These are the paper's Byzantine claims made executable: with at most
``f`` adversarial replicas per cluster, every attack in the behaviour
library may slow the system down or force view changes, but safety (no
fork among correct replicas, balance conservation, at-most-once
execution) must hold, and liveness must return once the view change
elects a correct primary.
"""

import pytest

from repro import FaultModel, WorkloadConfig
from repro.adversary import available_behaviors
from repro.api import DeploymentSpec, FaultSchedule, Scenario
from repro.common.metrics import MetricsCollector
from repro.common.types import ClusterId


def byzantine_scenario(
    behavior,
    cross_shard_fraction=0.2,
    seed=1,
    duration=0.8,
    at=0.05,
    num_clusters=2,
    **overrides,
):
    return Scenario(
        deployment=DeploymentSpec(
            system="sharper", fault_model=FaultModel.BYZANTINE, num_clusters=num_clusters
        ),
        workload=WorkloadConfig(cross_shard_fraction=cross_shard_fraction, accounts_per_shard=64),
        clients=8,
        duration=duration,
        warmup=0.06,
        seed=seed,
        faults=FaultSchedule().make_primary_byzantine(at=at, cluster=0, behavior=behavior),
        **overrides,
    )


class TestEveryBehaviorIsSafe:
    @pytest.mark.parametrize("behavior", sorted(available_behaviors()))
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_attack_passes_the_safety_audit(self, behavior, seed):
        result = byzantine_scenario(behavior, seed=seed).run()
        assert result.safety is not None, "adversary events must arm the safety audit"
        problems = (result.audit.problems if result.audit else []) + result.safety.problems
        assert result.ok, problems
        # The Byzantine node is excluded, every correct replica checked.
        assert result.safety.byzantine_nodes == (0,)
        assert result.safety.replicas_checked == 7
        # Despite the attack the system keeps committing (drain included).
        assert all(height > 0 for height in result.chain_heights.values())


class TestViewChangeLiveness:
    def test_silent_primary_forces_view_change_and_commits_resume(self):
        """A silent (not crashed) primary must not stall its cluster.

        Backups time out waiting for the muted pre-prepares/commits,
        rotate the view, and client traffic commits again — the
        liveness half of Section 3.1's fail-over argument, exercised by
        real misbehaviour instead of a crash.
        """
        # Short client retry: a fully muted primary leaves the backups
        # nothing to monitor, so suspicion starts from a client retry
        # reaching a backup (the PBFT request timer).
        scenario = byzantine_scenario(
            "silent-primary", at=0.05, duration=2.0, retry_timeout=0.2
        )
        system = scenario.build_system()
        metrics = MetricsCollector(warmup=scenario.warmup, measure_until=scenario.duration)
        clients = system.spawn_clients(scenario.clients, metrics, retry_timeout=scenario.retry_timeout)
        system.start_clients(clients)
        scenario.faults.arm(system)

        # Run until just after the adversary activates.
        system.sim.run(until=0.06)
        attacked = system.replicas_of(ClusterId(0))
        height_at_fault = max(replica.chain.height for replica in attacked)
        assert all(replica.intra.view == 0 for replica in attacked)

        # Give the backups time to suspect the primary and fail over
        # (view_change_timeout is 0.5s), then keep serving traffic.
        system.sim.run(until=scenario.duration)

        correct = [replica for replica in attacked if not replica.byzantine]
        # Backups timed out and rotated the view...
        assert all(replica.intra.view >= 1 for replica in correct)
        assert any(
            replica.intra.view_change.view_changes_completed >= 1 for replica in correct
        )
        new_primary = next(replica for replica in correct if replica.intra.is_primary)
        assert int(new_primary.pid) != 0
        # ...and the cluster committed new transactions under the new view.
        height_after = max(replica.chain.height for replica in correct)
        assert height_after > height_at_fault

        # The run stays safe end to end.
        system.drain(2.0)
        assert system.audit().ok
        report = system.safety_audit()
        assert report.ok, report.problems

    def test_silent_primary_scenario_api_end_to_end(self):
        result = byzantine_scenario(
            "silent-primary", duration=1.2, retry_timeout=0.2
        ).run()
        assert result.ok
        replicas = result.system.replicas_of(ClusterId(0))
        assert any(
            replica.intra.view >= 1 for replica in replicas if not replica.byzantine
        )


class TestComposition:
    def test_adversary_composes_with_crash_and_partition(self):
        """One declarative schedule mixes Byzantine, crash, and partition."""
        faults = (
            FaultSchedule()
            .make_primary_byzantine(at=0.05, cluster=0, behavior="vote-withholder")
            .crash_node(at=0.10, node_id=5)
            .partition(at=0.15, groups=[[0], [1]])
            .heal(at=0.25)
            .recover_node(at=0.30, node_id=5)
        )
        scenario = Scenario(
            deployment=DeploymentSpec(
                system="sharper", fault_model=FaultModel.BYZANTINE, num_clusters=2
            ),
            workload=WorkloadConfig(cross_shard_fraction=0.2, accounts_per_shard=64),
            clients=8,
            duration=0.6,
            seed=2,
            faults=faults,
        )
        result = scenario.run()
        assert result.safety is not None
        assert result.ok, (result.audit.problems if result.audit else []) + result.safety.problems

    def test_restore_returns_the_node_to_correct_behavior(self):
        faults = (
            FaultSchedule()
            .make_byzantine(at=0.05, node=0, behavior="silent-primary")
            .restore(at=0.2, node=0)
        )
        scenario = byzantine_scenario("silent-primary", duration=0.6).with_faults(faults)
        result = scenario.run()
        process = result.system.replicas[0]
        assert not process.byzantine
        assert process.interceptor is None
        # A restored node is audited again (byzantine set is empty).
        assert result.safety is not None
        assert result.safety.byzantine_nodes == ()
        assert result.safety.replicas_checked == 8
        assert result.ok


class TestWorkerPool:
    def test_behavior_instances_survive_the_jobs_pool(self):
        """A schedule carrying a behavior *instance* must stay picklable.

        Attachment is per-run runtime state: after a serial run armed
        the schedule, shipping the same scenarios to a worker pool must
        neither drag the live system through pickle nor leak one run's
        adversary RNG state into the next — per-seed results stay
        bit-identical between serial and pooled execution.
        """
        from repro.adversary import SelectiveSilence
        from repro.api import run_scenarios

        behavior = SelectiveSilence(seed=7, targets=[1, 2])
        base = byzantine_scenario(behavior, duration=0.3)
        scenarios = [base.with_seed(1), base.with_seed(2)]
        serial = run_scenarios(scenarios, jobs=1)
        pooled = run_scenarios(scenarios, jobs=2)
        for s, p in zip(serial, pooled):
            assert p.system is None
            assert s.stats.committed == p.stats.committed
            assert s.chain_heights == p.chain_heights
            assert s.safety is not None and p.safety is not None
            assert s.safety.byzantine_nodes == p.safety.byzantine_nodes


class TestDeterminism:
    def test_attacked_runs_are_bit_identical_per_seed(self):
        first = byzantine_scenario("equivocating-primary", seed=3, duration=0.5).run()
        second = byzantine_scenario("equivocating-primary", seed=3, duration=0.5).run()
        assert first.stats.committed == second.stats.committed
        assert first.chain_heights == second.chain_heights
        assert first.stats.avg_latency == second.stats.avg_latency
        assert first.system.network.messages_sent == second.system.network.messages_sent
        assert first.system.sim.processed_events == second.system.sim.processed_events

    def test_seeds_differ(self):
        first = byzantine_scenario("delay-attacker", seed=1, duration=0.4).run()
        second = byzantine_scenario("delay-attacker", seed=2, duration=0.4).run()
        assert (
            first.system.sim.processed_events != second.system.sim.processed_events
            or first.chain_heights != second.chain_heights
        )


class TestAttackSweepRouting:
    def test_sweep_routes_replica_client_and_coalition_attacks(self):
        """One sweep covers all three adversary classes, all safe."""
        from repro.bench.experiments import run_attack_sweep

        results = run_attack_sweep(
            behaviors=["forged-view", "duplicating-client", "coalition"],
            cross_fractions=(0.2,),
            seeds=(1,),
            duration=0.3,
        )
        assert len(results) == 3
        forged, duplicating, coalition = results
        for result in results:
            assert result.safety is not None
            assert result.ok, (
                (result.audit.problems if result.audit else [])
                + result.safety.problems
            )
        # Each name landed on the scenario shape its target needs.
        assert forged.system.byzantine_nodes == {0}
        assert duplicating.system.byzantine_clients and not duplicating.system.byzantine_nodes
        assert coalition.system.byzantine_nodes == {0, 5}
        assert coalition.system.coalitions

    def test_default_names_cover_every_registered_target(self):
        from repro.bench.experiments import COALITION_ATTACK, default_attack_names

        names = default_attack_names()
        assert set(available_behaviors()) <= set(names)
        assert set(available_behaviors("client")) <= set(names)
        assert COALITION_ATTACK in names


class TestFaultlessPathUnchanged:
    def test_no_adversary_means_no_safety_audit_and_no_interceptors(self):
        """Faultless sweeps must not pay for the adversary subsystem."""
        scenario = Scenario(
            deployment=DeploymentSpec(
                system="sharper", fault_model=FaultModel.CRASH, num_clusters=2
            ),
            workload=WorkloadConfig(accounts_per_shard=64),
            clients=8,
            duration=0.2,
        )
        result = scenario.run()
        assert result.safety is None
        assert all(
            process.interceptor is None for process in result.system.processes()
        )
        assert result.ok

    def test_audit_safety_flag_forces_the_audit_on_clean_runs(self):
        scenario = Scenario(
            deployment=DeploymentSpec(
                system="sharper", fault_model=FaultModel.CRASH, num_clusters=2
            ),
            workload=WorkloadConfig(accounts_per_shard=64),
            clients=8,
            duration=0.2,
            audit_safety=True,
        )
        result = scenario.run()
        assert result.safety is not None
        assert result.safety.ok


class TestCheckpointSuppression:
    def test_gc_stall_is_bounded_by_quorum_stability(self):
        """A checkpoint-suppressing primary cannot starve garbage collection.

        Checkpoint stability needs an intra-quorum of matching digests;
        with one suppressor in a 4-node Byzantine cluster the remaining
        2f + 1 correct replicas still form it, and the suppressor itself
        keeps garbage-collecting too — it still *receives* its peers'
        checkpoints and counts its own unsent vote.  The observable
        stall bound: every replica's log, the attacked cluster included,
        truncates below a stable mark despite the dropped messages.
        """
        from repro.adversary import CheckpointSuppressor

        behavior = CheckpointSuppressor()
        scenario = Scenario(
            deployment=DeploymentSpec(
                system="sharper",
                fault_model=FaultModel.BYZANTINE,
                num_clusters=2,
                checkpoint_interval=16,
            ),
            workload=WorkloadConfig(cross_shard_fraction=0.2, accounts_per_shard=64),
            clients=8,
            duration=0.8,
            seed=1,
            faults=FaultSchedule().make_primary_byzantine(
                at=0.05, cluster=0, behavior=behavior
            ),
        )
        result = scenario.run()
        # The attack actually fired (arming copies the instance so runs
        # never share adversary RNG state — read the attached copy).
        attached = result.system.replicas[0].interceptor
        assert attached.suppressed_checkpoints > 0
        # ...yet the run stays safe and garbage collection proceeds.
        assert result.safety is not None
        assert result.ok, (
            (result.audit.problems if result.audit else [])
            + result.safety.problems
        )
        assert result.recovery is not None
        assert result.recovery.checkpoints_stable > 0
        assert result.recovery.entries_truncated > 0
        # Quorum stability is cluster-local: even the suppressor's own
        # cluster (and the suppressor itself) truncated its log.
        for replica in result.system.replicas_of(ClusterId(0)):
            assert replica.log.low_water_mark > 0
