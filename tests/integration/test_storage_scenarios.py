"""End-to-end storage scenarios: backend equivalence, archived runs, history.

Integration acceptance for the storage subsystem:

* the columnar backend is an *observationally identical* drop-in for the
  dict backend — same seed, same committed transactions, same chain
  heights, and bit-identical per-replica store digests, including under
  crash/recover churn with checkpointing and state transfer;
* a checkpointed run with an archive attached keeps the resident block
  count bounded while the archive absorbs the pruned history contiguously,
  and the offline auditor re-verifies the archived chain and balances;
* the history query API answers over the archive what the live system
  can no longer answer after pruning.
"""

import pytest

from repro.api import DeploymentSpec, FaultSchedule, Scenario
from repro.common.types import FaultModel
from repro.storage import HistoryQuery, audit_archive
from repro.txn.workload import WorkloadConfig


def storage_scenario(
    store_backend: str,
    archive: str | None = None,
    checkpoint_interval: int | None = 20,
    faults: FaultSchedule | None = None,
    duration: float = 0.8,
    seed: int = 5,
) -> Scenario:
    return Scenario(
        deployment=DeploymentSpec(
            system="sharper",
            fault_model=FaultModel.CRASH,
            num_clusters=3,
            checkpoint_interval=checkpoint_interval,
            store_backend=store_backend,
            archive=archive,
        ),
        workload=WorkloadConfig(cross_shard_fraction=0.1, accounts_per_shard=256),
        clients=12,
        duration=duration,
        seed=seed,
        faults=faults or FaultSchedule(),
    )


def replica_digests(result) -> dict:
    return {
        pid: replica.store.state_digest()
        for pid, replica in result.system.replicas.items()
    }


class TestDifferentialBackends:
    def test_columnar_is_observationally_identical_to_dict(self):
        """Satellite acceptance: backend equivalence, bit for bit."""
        dict_result = storage_scenario("dict").run()
        columnar_result = storage_scenario("columnar").run()
        dict_result.raise_if_failed()
        columnar_result.raise_if_failed()
        assert dict_result.stats.committed == columnar_result.stats.committed
        assert dict_result.stats.committed_cross == columnar_result.stats.committed_cross
        assert dict_result.chain_heights == columnar_result.chain_heights
        assert dict_result.total_balance == columnar_result.total_balance
        assert replica_digests(dict_result) == replica_digests(columnar_result)
        assert dict_result.storage.backend == "dict"
        assert columnar_result.storage.backend == "columnar"

    def test_backends_identical_under_crash_and_recovery(self):
        """Equivalence must survive checkpoint restore and state transfer."""
        def faults():
            return (
                FaultSchedule()
                .crash_node(at=0.2, node_id=2)
                .recover_node(at=0.5, node_id=2)
            )

        dict_result = storage_scenario("dict", faults=faults(), seed=9).run()
        columnar_result = storage_scenario("columnar", faults=faults(), seed=9).run()
        dict_result.raise_if_failed()
        columnar_result.raise_if_failed()
        assert dict_result.stats.committed == columnar_result.stats.committed
        assert dict_result.chain_heights == columnar_result.chain_heights
        assert replica_digests(dict_result) == replica_digests(columnar_result)
        # The recovered replica actually exercised snapshot restore.
        assert dict_result.recovery.state_transfers_completed > 0
        assert columnar_result.recovery.state_transfers_completed > 0


class TestArchivedRun:
    def test_bounded_residency_with_contiguous_archive(self):
        """Tentpole acceptance: prune spills, residency stays bounded."""
        interval = 20
        result = storage_scenario(
            "columnar", archive=":memory:", checkpoint_interval=interval
        ).run()
        result.raise_if_failed()
        storage = result.storage
        decided = min(result.chain_heights.values())
        assert decided >= 5 * interval, "run too short to prove anything"
        assert storage.archived
        assert storage.archive_blocks > 0
        assert storage.archive_tx_rows > 0
        assert storage.archive_checkpoints > 0
        # Resident blocks are bounded by the checkpoint window, not the
        # run length: the ledger never retains the full chain.
        assert storage.peak_ledger_blocks < decided
        assert storage.peak_ledger_blocks <= 4 * interval
        # The archive holds the pruned prefix contiguously.
        archive = result.system.archive
        history = HistoryQuery(archive)
        for cluster_id in result.chain_heights:
            height = archive.archived_height(int(cluster_id))
            assert height > 0
            blocks = history.blocks_in_range(int(cluster_id), 1, height)
            assert [block.position for block in blocks] == list(range(1, height + 1))

    def test_offline_audit_passes_on_archived_run(self):
        result = storage_scenario(
            "columnar", archive=":memory:", checkpoint_interval=16, seed=7
        ).run()
        result.raise_if_failed()
        report = audit_archive(result.system.archive)
        assert report.ok, report.problems
        assert report.blocks_verified > 0
        assert report.txs_replayed > 0
        assert report.checkpoints_verified > 0
        assert report.failed_replays == 0

    def test_dict_backend_archives_too(self):
        result = storage_scenario(
            "dict", archive=":memory:", checkpoint_interval=16, seed=3
        ).run()
        result.raise_if_failed()
        assert result.storage.archived
        report = audit_archive(result.system.archive)
        assert report.ok, report.problems

    def test_storage_gauges_in_report(self):
        """Satellite acceptance: gauges surface in summary() and as_dict()."""
        result = storage_scenario(
            "columnar", archive=":memory:", duration=0.4
        ).run()
        row = result.as_dict()
        assert row["store_backend"] == "columnar"
        # Summed over every replica: 3 clusters x 3 crash-model replicas.
        assert row["resident_accounts"] == 9 * 256
        assert row["archive_blocks"] > 0
        summary = result.summary()
        assert "storage" in summary
        assert "columnar" in summary
        assert "archive" in summary

    def test_unarchived_run_reports_no_archive(self):
        result = storage_scenario("columnar", archive=None, duration=0.4).run()
        assert result.storage is not None
        assert not result.storage.archived
        assert result.storage.archive_blocks == 0


class TestHistoryOverArchivedRun:
    @pytest.fixture(scope="class")
    def archived_result(self):
        result = storage_scenario(
            "columnar", archive=":memory:", checkpoint_interval=16, seed=13
        ).run()
        result.raise_if_failed()
        return result

    def test_archived_tx_queryable_by_id(self, archived_result):
        history = HistoryQuery(archived_result.system.archive)
        block = history.block_at(0, 1)
        assert block.tx_ids or block.is_noop
        if block.tx_ids:
            tx = history.tx_by_id(block.tx_ids[0])
            assert (0, 1) in tx.positions
            assert tx.transfers

    def test_account_activity_covers_pruned_prefix(self, archived_result):
        history = HistoryQuery(archived_result.system.archive)
        archive = archived_result.system.archive
        # Some account of shard 0 must have archived activity.
        row = archive.connection.execute(
            "SELECT source FROM transfers WHERE cluster = 0 LIMIT 1"
        ).fetchone()
        assert row is not None
        activity = history.account_activity(row[0])
        assert activity
        assert all(record.delta != 0 for record in activity if record.source != record.destination)

    def test_cross_shard_ancestry_over_archive(self, archived_result):
        archive = archived_result.system.archive
        history = HistoryQuery(archive)
        cross = archive.connection.execute(
            "SELECT src_cluster, dst_cluster, pre_position, post_position"
            " FROM xlinks LIMIT 1"
        ).fetchone()
        assert cross is not None, "cross-shard workload produced no archived links"
        src, dst, pre, post = cross
        if pre > 1:
            assert history.is_ancestor((src, 1), (dst, post))
        assert not history.is_ancestor((src, pre), (dst, post))  # same block
