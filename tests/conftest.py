"""Pytest configuration: make the shared helpers importable everywhere."""

from __future__ import annotations

import sys
from pathlib import Path

# tests/helpers.py is imported as a plain module by unit/integration/property
# test files regardless of which directory pytest was invoked from.
sys.path.insert(0, str(Path(__file__).resolve().parent))
