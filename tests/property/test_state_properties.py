"""Property-based tests for the account store, executor, and workload."""

from hypothesis import assume, given, settings, strategies as st

from repro.common.errors import ValidationError
from repro.txn.accounts import AccountStore, ShardMapper
from repro.txn.execution import TransactionExecutor
from repro.txn.transaction import Transaction, Transfer
from repro.txn.workload import WorkloadConfig, WorkloadGenerator

NUM_SHARDS = 3
ACCOUNTS_PER_SHARD = 8
TOTAL = NUM_SHARDS * ACCOUNTS_PER_SHARD


def build_shards(initial_balance=1000):
    mapper = ShardMapper(NUM_SHARDS, ACCOUNTS_PER_SHARD)
    executors = {}
    stores = {}
    for shard in range(NUM_SHARDS):
        store = AccountStore.bootstrap(
            shard, mapper, initial_balance,
            owner_of={a: a % 4 for a in mapper.accounts_in_shard(shard)},
        )
        stores[shard] = store
        executors[shard] = TransactionExecutor(store, mapper, shard)
    return mapper, stores, executors


transfer_strategy = st.tuples(
    st.integers(min_value=0, max_value=TOTAL - 1),
    st.integers(min_value=0, max_value=TOTAL - 1),
    st.integers(min_value=1, max_value=50),
)


@settings(max_examples=60, deadline=None)
@given(st.lists(transfer_strategy, max_size=40))
def test_total_balance_is_conserved_by_any_transfer_sequence(raw_transfers):
    mapper, stores, executors = build_shards()
    initial_total = sum(store.total_balance() for store in stores.values())
    for source, destination, amount in raw_transfers:
        if source == destination:
            continue
        tx = Transaction.transfer(
            client=source % 4, source=source, destination=destination, amount=amount
        )
        involved = tx.involved_shards(mapper)
        # Apply the transaction at every involved shard, as consensus would.
        results = [executors[shard].execute(tx) for shard in sorted(involved)]
        # A transaction is either applied by every involved shard or by none
        # (the source shard validates; with these balances it always succeeds
        # or fails only on overdraft, in which case we skip the rest).
        if not all(result.success for result in results):
            assume(False)
    assert sum(store.total_balance() for store in stores.values()) == initial_total


@settings(max_examples=60, deadline=None)
@given(st.lists(transfer_strategy, min_size=1, max_size=30))
def test_balances_never_go_negative(raw_transfers):
    mapper, stores, executors = build_shards(initial_balance=20)
    for source, destination, amount in raw_transfers:
        if source == destination:
            continue
        tx = Transaction.transfer(
            client=source % 4, source=source, destination=destination, amount=amount
        )
        for shard in sorted(tx.involved_shards(mapper)):
            executors[shard].execute(tx)
    for store in stores.values():
        for account in store:
            assert account.balance >= 0


@settings(max_examples=40, deadline=None)
@given(
    st.floats(min_value=0.0, max_value=1.0),
    st.integers(min_value=2, max_value=4),
    st.integers(min_value=0, max_value=10_000),
)
def test_workload_generator_respects_shard_counts(cross_fraction, shards_per_tx, seed):
    config = WorkloadConfig(
        cross_shard_fraction=cross_fraction,
        shards_per_cross_tx=shards_per_tx,
        accounts_per_shard=16,
        num_clients=8,
    )
    generator = WorkloadGenerator(config, num_shards=4, seed=seed)
    for tx in generator.stream(30):
        shards = tx.involved_shards(generator.mapper)
        assert 1 <= len(shards) <= max(2, shards_per_tx)
        if len(shards) > 1:
            assert len(shards) == shards_per_tx
        # The issuing client owns every source account.
        for transfer in tx.transfers:
            assert tx.client == generator.owner_of(transfer.source)


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_workload_is_deterministic_in_the_seed(seed):
    config = WorkloadConfig(cross_shard_fraction=0.4, accounts_per_shard=32)
    first = [
        (tx.transfers, tx.client)
        for tx in WorkloadGenerator(config, num_shards=4, seed=seed).stream(20)
    ]
    second = [
        (tx.transfers, tx.client)
        for tx in WorkloadGenerator(config, num_shards=4, seed=seed).stream(20)
    ]
    assert first == second


@settings(max_examples=60, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=TOTAL - 1), min_size=1, max_size=10))
def test_shard_mapper_partitions_the_keyspace(accounts):
    mapper = ShardMapper(NUM_SHARDS, ACCOUNTS_PER_SHARD)
    for account in accounts:
        shard = mapper.shard_of(account)
        assert account in mapper.accounts_in_shard(shard)
    # Every account belongs to exactly one shard.
    all_ranges = [set(mapper.accounts_in_shard(s)) for s in range(NUM_SHARDS)]
    union = set().union(*all_ranges)
    assert len(union) == TOTAL
