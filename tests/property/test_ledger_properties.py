"""Property-based tests for the ledger invariants (hypothesis).

These encode the structural claims of Section 2.3: every cluster view is a
valid hash chain; the global ledger is the union of the views; blocks
shared by two clusters appear in both views; intra-shard blocks of
different clusters are independent.
"""

from hypothesis import given, settings, strategies as st

from repro.common.types import ClusterId
from repro.ledger.block import Block
from repro.ledger.dag import BlockDAG
from repro.ledger.validation import audit_views
from repro.ledger.view import ClusterView
from repro.txn.transaction import Transaction

NUM_CLUSTERS = 3

# A synthetic "schedule": each element is the set of clusters one block involves.
block_involvements = st.lists(
    st.sets(st.integers(min_value=0, max_value=NUM_CLUSTERS - 1), min_size=1, max_size=NUM_CLUSTERS),
    min_size=0,
    max_size=30,
)


def build_views(schedule):
    """Deterministically append one block per schedule entry to the views."""
    views = {ClusterId(c): ClusterView(ClusterId(c)) for c in range(NUM_CLUSTERS)}
    account = 0
    for involved in schedule:
        involved = sorted(involved)
        account += 2
        tx = Transaction.transfer(
            client=1, source=account, destination=account + 1, amount=1
        )
        positions = {ClusterId(c): views[ClusterId(c)].next_index for c in involved}
        block = Block.create(tx, positions, proposer=ClusterId(involved[0]))
        for cluster in involved:
            cluster = ClusterId(cluster)
            views[cluster].append(block.with_parent(cluster, views[cluster].head_hash))
    return views


@settings(max_examples=60, deadline=None)
@given(block_involvements)
def test_views_built_in_schedule_order_always_audit_clean(schedule):
    views = build_views(schedule)
    report = audit_views(views)
    assert report.ok, report.problems
    # Blocks appended in a single global order can never create a cycle.
    assert not report.ordering_cycle


@settings(max_examples=60, deadline=None)
@given(block_involvements)
def test_dag_is_union_of_views(schedule):
    views = build_views(schedule)
    dag = BlockDAG.from_views(views.values())
    assert dag.equals_union_of(views)
    # Total blocks = number of schedule entries (cross blocks counted once).
    assert len(dag) == len(schedule)


@settings(max_examples=60, deadline=None)
@given(block_involvements)
def test_per_cluster_chains_are_contiguous_and_hash_linked(schedule):
    views = build_views(schedule)
    for cluster, view in views.items():
        view.verify()
        previous_hash = view.genesis.block_hash
        for position, block in enumerate(view.blocks(), start=1):
            assert block.position_for(cluster) == position
            assert block.parent_for(cluster) == previous_hash
            previous_hash = block.block_hash


@settings(max_examples=60, deadline=None)
@given(block_involvements)
def test_cross_blocks_present_in_exactly_their_involved_views(schedule):
    views = build_views(schedule)
    dag = BlockDAG.from_views(views.values())
    for block in dag.blocks():
        for cluster, view in views.items():
            if block.involves(cluster):
                assert view.contains_tx(block.tx_ids[0])
            else:
                assert not view.contains_tx(block.tx_ids[0])


@settings(max_examples=40, deadline=None)
@given(block_involvements)
def test_topological_order_respects_every_chain(schedule):
    views = build_views(schedule)
    dag = BlockDAG.from_views(views.values())
    order = {block.block_hash: index for index, block in enumerate(dag.topological_order())}
    for cluster in views:
        chain = dag.chain_of(cluster)
        indices = [order[block.block_hash] for block in chain]
        assert indices == sorted(indices)
