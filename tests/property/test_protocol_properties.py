"""Property-based tests for quorum arithmetic, digests, and the simulator."""

from hypothesis import given, settings, strategies as st

from repro.common.crypto import digest
from repro.common.types import FaultModel
from repro.consensus.base import QuorumTracker
from repro.sim.simulator import Simulator


@settings(max_examples=100, deadline=None)
@given(st.integers(min_value=0, max_value=50))
def test_cluster_sizes_tolerate_f_failures(f):
    """Quorum intersection: two quorums always share a correct node."""
    for fault_model in FaultModel:
        n = fault_model.min_cluster_size(f)
        quorum = fault_model.quorum_size(f)
        # Two quorums intersect in at least one node...
        assert 2 * quorum - n >= (1 if f > 0 or fault_model is FaultModel.CRASH else 1) or f == 0
        if fault_model is FaultModel.BYZANTINE and f > 0:
            # ...and for Byzantine clusters, in at least f + 1 nodes,
            # guaranteeing one correct node in the intersection.
            assert 2 * quorum - n >= f + 1
        # A quorum survives f failures.
        assert n - f >= quorum


@settings(max_examples=50, deadline=None)
@given(
    st.integers(min_value=1, max_value=7),
    st.lists(st.tuples(st.integers(0, 20), st.integers(0, 5)), max_size=60),
)
def test_quorum_tracker_fires_exactly_once_per_key(threshold, votes):
    tracker = QuorumTracker(threshold)
    fired = {}
    for key, voter in votes:
        if tracker.vote(key, voter):
            assert key not in fired, "a key fired twice"
            fired[key] = True
            assert tracker.count(key) >= threshold
    for key, _ in votes:
        if tracker.reached(key):
            assert len(tracker.voters(key)) >= threshold


@settings(max_examples=80, deadline=None)
@given(
    st.recursive(
        st.one_of(
            st.none(), st.booleans(), st.integers(), st.text(max_size=12),
            st.binary(max_size=12),
        ),
        lambda children: st.one_of(
            st.lists(children, max_size=4),
            st.dictionaries(st.text(max_size=5), children, max_size=4),
        ),
        max_leaves=12,
    )
)
def test_digest_is_deterministic_and_64_hex_chars(value):
    first = digest(value)
    second = digest(value)
    assert first == second
    assert len(first) == 64
    assert set(first) <= set("0123456789abcdef")


@settings(max_examples=50, deadline=None)
@given(st.lists(st.floats(min_value=0.0, max_value=10.0, allow_nan=False), max_size=40))
def test_simulator_fires_events_in_nondecreasing_time_order(delays):
    sim = Simulator(seed=0)
    fired = []
    for delay in delays:
        sim.schedule(delay, lambda: fired.append(sim.now))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)
