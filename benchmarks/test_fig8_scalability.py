"""Figure 8: SharPer scalability with the number of clusters.

Paper setup: 90% intra-shard / 10% cross-shard transactions (the typical
partitioned-database mix), clusters of three crash-only or four Byzantine
nodes, and 2 to 5 clusters.  Throughput should grow close to linearly
with the number of clusters.
"""

from __future__ import annotations

from conftest import run_figure_benchmark


def test_fig8a_crash_scalability(benchmark):
    """Crash-only: peak throughput grows with the cluster count."""
    result = run_figure_benchmark(benchmark, "fig8a")
    peaks = result.peaks()
    assert peaks["5 clusters"] > peaks["3 clusters"] > 0
    assert peaks["4 clusters"] > peaks["2 clusters"]
    # Semi-linear scaling: 2 -> 4 clusters should buy at least ~1.5x.
    assert peaks["4 clusters"] > 1.5 * peaks["2 clusters"]


def test_fig8b_byzantine_scalability(benchmark):
    """Byzantine: peak throughput grows with the cluster count."""
    result = run_figure_benchmark(benchmark, "fig8b")
    peaks = result.peaks()
    assert peaks["5 clusters"] > peaks["3 clusters"] > 0
    assert peaks["4 clusters"] > 1.4 * peaks["2 clusters"]
