"""Shared helpers for the benchmark suite.

Every benchmark regenerates one figure (or one ablation) of the paper's
evaluation.  The suite favours short simulated windows so the whole
directory runs in a few minutes; pass ``--benchmark-only`` to pytest to
run it, and use ``sharper-bench <figure> --full`` for fuller curves.
"""

from __future__ import annotations

import pytest

from repro.bench.experiments import run_figure
from repro.bench.reporting import format_figure

#: client sweep and window used by the benchmark suite (kept small so the
#: full suite completes quickly; the CLI exposes fuller sweeps).
BENCH_CLIENTS = (12, 64)
BENCH_DURATION = 0.15
BENCH_WARMUP = 0.03


def run_and_report(figure_id: str):
    """Run one figure with the benchmark-suite settings and print it."""
    result = run_figure(
        figure_id,
        client_counts=BENCH_CLIENTS,
        duration=BENCH_DURATION,
        warmup=BENCH_WARMUP,
    )
    print()
    print(format_figure(result))
    return result


def run_figure_benchmark(benchmark, figure_id: str):
    """Benchmark one figure via pytest-benchmark (single round)."""
    result = benchmark.pedantic(run_and_report, args=(figure_id,), rounds=1, iterations=1)
    return result
