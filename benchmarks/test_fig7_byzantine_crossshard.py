"""Figure 7: throughput/latency with Byzantine nodes, varying cross-shard %.

Paper setup: 16 Byzantine nodes; SharPer and AHL-B split them into four
clusters of four (PBFT, f = 1); APR-B uses 4 active + 12 passive
replicas; FaB uses 6 consensus nodes (5f + 1) + 10 passive replicas.
"""

from __future__ import annotations

from conftest import run_figure_benchmark


def test_fig7a_no_cross_shard(benchmark):
    """0% cross-shard: sharded systems far ahead; SharPer == AHL-B."""
    result = run_figure_benchmark(benchmark, "fig7a")
    peaks = result.peaks()
    assert peaks["SharPer"] > 2.0 * peaks["APR-B"]
    assert peaks["SharPer"] > 1.8 * peaks["FaB"]
    assert abs(peaks["SharPer"] - peaks["AHL-B"]) / peaks["SharPer"] < 0.25


def test_fig7b_20pct_cross_shard(benchmark):
    """20% cross-shard: SharPer >= AHL-B and well above the non-sharded systems."""
    result = run_figure_benchmark(benchmark, "fig7b")
    peaks = result.peaks()
    # Allow 10% tolerance at the benchmark suite's short measurement window.
    assert peaks["SharPer"] >= 0.90 * peaks["AHL-B"]
    assert peaks["SharPer"] > 1.5 * peaks["APR-B"]


def test_fig7c_80pct_cross_shard(benchmark):
    """80% cross-shard: SharPer ahead of AHL-B."""
    result = run_figure_benchmark(benchmark, "fig7c")
    peaks = result.peaks()
    assert peaks["SharPer"] > peaks["AHL-B"]


def test_fig7d_all_cross_shard(benchmark):
    """100% cross-shard: SharPer clearly ahead of AHL-B (paper: ~1.5x)."""
    result = run_figure_benchmark(benchmark, "fig7d")
    peaks = result.peaks()
    assert peaks["SharPer"] > 1.1 * peaks["AHL-B"]
