"""Figure 6: throughput/latency with crash-only nodes, varying cross-shard %.

Paper setup: 12 crash-only nodes; SharPer and AHL-C split them into four
clusters of three (Paxos, f = 1); APR-C uses 3 active + 9 passive
replicas; FPaxos uses 4 consensus nodes + 8 passive replicas.  Each
sub-figure varies the fraction of cross-shard transactions.

The assertions check the paper's qualitative claims (who wins and by
roughly what factor), not absolute numbers.
"""

from __future__ import annotations

from conftest import run_figure_benchmark


def test_fig6a_no_cross_shard(benchmark):
    """0% cross-shard: sharded systems far ahead of non-sharded ones."""
    result = run_figure_benchmark(benchmark, "fig6a")
    peaks = result.peaks()
    assert peaks["SharPer"] > 2.0 * peaks["APR-C"]
    assert peaks["SharPer"] > 2.0 * peaks["FPaxos"]
    # Intra-shard path identical: SharPer and AHL-C within 20% of each other.
    assert abs(peaks["SharPer"] - peaks["AHL-C"]) / peaks["SharPer"] < 0.25


def test_fig6b_20pct_cross_shard(benchmark):
    """20% cross-shard: SharPer >= AHL-C, both well above APR-C/FPaxos."""
    result = run_figure_benchmark(benchmark, "fig6b")
    peaks = result.peaks()
    assert peaks["SharPer"] >= 0.95 * peaks["AHL-C"]
    assert peaks["SharPer"] > 1.8 * peaks["APR-C"]


def test_fig6c_80pct_cross_shard(benchmark):
    """80% cross-shard: SharPer still ahead of AHL-C; advantage over
    non-sharded systems shrinks and their latency is lower."""
    result = run_figure_benchmark(benchmark, "fig6c")
    peaks = result.peaks()
    assert peaks["SharPer"] > peaks["AHL-C"]
    sharper_latency = result.curve("SharPer").peak().latency_ms
    apr_latency = result.curve("APR-C").points[0].latency_ms
    assert apr_latency < sharper_latency * 3


def test_fig6d_all_cross_shard(benchmark):
    """100% cross-shard: SharPer clearly above AHL-C (parallel non-overlapping
    cross-shard transactions and fewer phases)."""
    result = run_figure_benchmark(benchmark, "fig6d")
    peaks = result.peaks()
    assert peaks["SharPer"] > 1.2 * peaks["AHL-C"]
