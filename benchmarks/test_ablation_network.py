"""Ablation: sensitivity to the cross-cluster network distance.

The paper deploys all clusters inside one EC2 region, so cross-cluster
links are nearly as fast as intra-cluster ones.  This ablation stretches
the cross-cluster latency towards a WAN setting and measures how the
advantage of the flattened cross-shard protocol (fewer phases than AHL's
reference-committee 2PC) translates into latency.
"""

from __future__ import annotations

from dataclasses import replace

from repro.bench.harness import ExperimentSpec, run_point
from repro.common.config import PerformanceModel
from repro.common.types import FaultModel


def _latency_of(system: str, cross_cluster_latency: float, clients: int = 24) -> float:
    performance = replace(PerformanceModel(), cross_cluster_latency=cross_cluster_latency)
    spec = ExperimentSpec(
        system=system,
        fault_model=FaultModel.CRASH,
        cross_shard_fraction=1.0,
        duration=0.15,
        warmup=0.03,
        performance=performance,
    )
    stats = run_point(spec, clients)
    return stats.avg_latency_cross


def test_cross_cluster_latency_ablation(benchmark):
    """SharPer's cross-shard latency stays below AHL's as links get slower."""

    def run_all():
        results = {}
        for label, latency in (("lan", 1e-3), ("metro", 5e-3)):
            results[label] = {
                "sharper": _latency_of("sharper", latency),
                "ahl": _latency_of("ahl", latency),
            }
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print()
    for label, values in results.items():
        print(
            f"{label:6s} cross-shard latency: SharPer {values['sharper'] * 1e3:7.2f} ms, "
            f"AHL-C {values['ahl'] * 1e3:7.2f} ms"
        )
    for values in results.values():
        # Fewer communication phases: SharPer's cross-shard latency is lower.
        assert values["sharper"] < values["ahl"]
    # Slower links increase SharPer's absolute cross-shard latency.
    assert results["metro"]["sharper"] > results["lan"]["sharper"]
