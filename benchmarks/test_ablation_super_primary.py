"""Ablation: the super-primary optimisation (Section 3.2).

The super primary routes every cross-shard transaction over a set of
clusters through the primary of the lowest-numbered involved cluster,
which removes conflicts between concurrent cross-shard transactions.
This ablation runs a cross-shard-heavy workload with the rule enabled and
disabled and compares committed throughput and the number of protocol
retries.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import ExperimentSpec, run_point
from repro.common.config import ProtocolTuning
from repro.common.metrics import MetricsCollector
from repro.common.types import FaultModel


def _run(use_super_primary: bool, clients: int = 48):
    spec = ExperimentSpec(
        system="sharper",
        fault_model=FaultModel.CRASH,
        cross_shard_fraction=0.8,
        duration=0.15,
        warmup=0.03,
        tuning=ProtocolTuning(use_super_primary=use_super_primary),
    )
    return run_point(spec, clients)


def test_super_primary_ablation(benchmark):
    """With the super primary the system commits at least as much work."""

    def run_both():
        with_rule = _run(True)
        without_rule = _run(False)
        return with_rule, without_rule

    with_rule, without_rule = benchmark.pedantic(run_both, rounds=1, iterations=1)
    print(
        f"\nsuper-primary on : {with_rule.throughput:8.0f} tps, "
        f"{with_rule.avg_latency * 1e3:6.2f} ms avg latency"
        f"\nsuper-primary off: {without_rule.throughput:8.0f} tps, "
        f"{without_rule.avg_latency * 1e3:6.2f} ms avg latency"
    )
    # The optimisation must never hurt committed throughput materially.
    assert with_rule.throughput >= 0.8 * without_rule.throughput
    assert with_rule.committed > 0 and without_rule.committed > 0
