"""Cross-shard accounting: follow individual transfers across shards.

This example mirrors the scenario the paper's introduction motivates: a
blockchain-based accounting application where client accounts live in
different shards and some transfers move assets between them.  The
deployments are declared through :class:`repro.api.Scenario` /
:class:`repro.api.DeploymentSpec` (``scenario.build_system()`` gives the
live system without running a synthetic workload); the example then
submits a handful of hand-written transactions, waits for them to
commit, and walks the DAG to show where each one landed — including a
Byzantine deployment with a 3-shard transaction.

Run with::

    python examples/cross_shard_accounting.py
"""

from __future__ import annotations

from repro import FaultModel, SharPerSystem, Transaction, Transfer, WorkloadConfig
from repro.api import DeploymentSpec, Scenario
from repro.common.metrics import MetricsCollector
from repro.consensus.messages import ClientRequest
from repro.ledger.dag import BlockDAG


def build_system(fault_model: FaultModel) -> SharPerSystem:
    """Declare the deployment and hand back the live (un-run) system."""
    scenario = Scenario(
        deployment=DeploymentSpec(system="sharper", fault_model=fault_model, num_clusters=4),
        workload=WorkloadConfig(cross_shard_fraction=0.0, accounts_per_shard=100, num_clients=8),
    )
    return scenario.build_system()


def submit_and_run(system: SharPerSystem, transactions) -> None:
    """Submit hand-built transactions through a single client process."""
    metrics = MetricsCollector()
    [client] = system.spawn_clients(1, metrics)

    # Bypass the workload generator: feed our own transactions directly.
    for index, transaction in enumerate(transactions):
        request = ClientRequest(
            transaction=transaction,
            client=transaction.client,
            timestamp=0.0,
            reply_to=client.pid,
        )
        target = system.route(transaction)
        system.sim.schedule(1e-4 * index, system.network.send, client.pid, target, request)
    system.sim.run(until=0.5)


def describe(system: SharPerSystem) -> None:
    views = system.views()
    dag = BlockDAG.from_views(views.values())
    print("  committed blocks (topological order):")
    for block in dag.topological_order():
        clusters = ",".join(f"p{c}" for c in sorted(block.involved_clusters))
        kind = "cross-shard" if block.is_cross_shard else "intra-shard"
        print(f"    {block.label():18s} {kind:12s} clusters [{clusters}] tx={block.tx_ids}")
    report = system.audit()
    print(f"  audit: {'OK' if report.ok else report.problems}")


def crash_only_demo() -> None:
    print("== crash-only deployment (4 clusters of 3, Paxos + Algorithm 1) ==")
    system = build_system(FaultModel.CRASH)

    # Accounts 0-99 live in shard d1, 100-199 in d2, 200-299 in d3, 300-399 in d4.
    transactions = [
        # Intra-shard transfer inside shard d1.
        Transaction.transfer(client=5, source=5, destination=7, amount=40),
        # Cross-shard transfer from shard d1 to shard d3.
        Transaction.transfer(client=1, source=1, destination=205, amount=25),
        # Cross-shard transfer from shard d2 to shard d4.
        Transaction.transfer(client=2, source=130, destination=310, amount=10),
    ]
    submit_and_run(system, transactions)
    describe(system)
    balance = system.stores()[2].balance(205)
    print(f"  account 205 (shard d3) balance after transfers: {balance}")
    print()


def byzantine_demo() -> None:
    print("== Byzantine deployment (4 clusters of 4, PBFT + Algorithm 2) ==")
    system = build_system(FaultModel.BYZANTINE)

    transactions = [
        Transaction.transfer(client=4, source=4, destination=9, amount=3),
        # A transaction touching three shards: d1 -> d2 and d1 -> d4,
        # ordered by the flattened protocol among clusters p1, p2, p4.
        Transaction.multi_transfer(
            client=0,
            transfers=[Transfer(source=0, destination=150, amount=5),
                       Transfer(source=0, destination=350, amount=5)],
        ),
    ]
    submit_and_run(system, transactions)
    describe(system)
    print()


def main() -> None:
    crash_only_demo()
    byzantine_demo()


if __name__ == "__main__":
    main()
