"""Byzantine attacks: every shipped adversary behaviour vs. SharPer.

Run with::

    python examples/byzantine_attacks.py                 # full sweep, 3 seeds
    python examples/byzantine_attacks.py --quick         # CI-sized smoke run
    python examples/byzantine_attacks.py --attack equivocating-primary
    python examples/byzantine_attacks.py --attack duplicating-client
    python examples/byzantine_attacks.py --attack coalition

The paper claims SharPer stays safe with up to ``f`` Byzantine replicas
per cluster and correct clients (Section 2.1).  This example makes both
claims executable.  For every registered adversary behaviour it runs the
matching attack shape —

* **replica behaviours** (equivocation, silence, delay, vote
  withholding, digest tampering, forged views, the adaptive
  quorum-aware equivocator) turn the primary of one cluster Byzantine
  mid-run;
* **client behaviours** (duplicated/replayed requests, forged-signature
  impersonation, ownership-violating transfers) turn one client
  Byzantine, with the replica-side request guards armed against it;
* the **coalition** pseudo-attack binds a delay-attacker on the
  initiator cluster's primary and a vote-withholder in a remote cluster
  to one shared cross-shard target list —

sweeps the cross-shard fraction, and checks every run with the
cross-replica :class:`repro.adversary.SafetyAuditor`: no two correct
replicas may fork, balances must be conserved, and every transaction
must execute at most once.  The process exits non-zero if any scenario
violates safety, so this file doubles as the CI ``byzantine-smoke``
gate.  See ``docs/adversary.md`` for the full threat-model catalogue.
"""

from __future__ import annotations

import argparse
import sys

from repro.bench.experiments import (
    ATTACK_CROSS_FRACTIONS,
    default_attack_names,
    run_attack_sweep,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--attack", action="append", metavar="NAME",
        help="attack(s) to run: a behavior registry name (replica or client "
        "target) or 'coalition' (default: everything registered)",
    )
    parser.add_argument("--seeds", type=int, default=3, help="seeds per point (default 3)")
    parser.add_argument("--clusters", type=int, default=2, help="number of clusters")
    parser.add_argument("--clients", type=int, default=12, help="closed-loop clients")
    parser.add_argument(
        "--duration", type=float, default=0.5, help="simulated seconds per point"
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N", help="run points in an N-process pool"
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="small deployment for CI: 1 seed, shorter run, 0%% and 20%% cross-shard",
    )
    args = parser.parse_args(argv)

    behaviors = args.attack or default_attack_names()
    seeds = tuple(range(1, (1 if args.quick else args.seeds) + 1))
    duration = 0.3 if args.quick else args.duration

    print(
        f"== Byzantine attack sweep: {len(behaviors)} attacks x "
        f"{len(ATTACK_CROSS_FRACTIONS)} cross-shard fractions x {len(seeds)} seeds =="
    )
    results = run_attack_sweep(
        behaviors=behaviors,
        seeds=seeds,
        num_clusters=args.clusters,
        clients=args.clients,
        duration=duration,
        jobs=args.jobs,
    )

    failures = 0
    for result in results:
        safety = result.safety
        verdict = "SAFE" if result.ok else "VIOLATED"
        heights = ", ".join(
            f"p{int(cluster)}={height}"
            for cluster, height in sorted(result.chain_heights.items())
        )
        print(
            f"  {result.scenario.label:42s} seed={result.scenario.seed}  "
            f"{verdict:8s} committed={result.stats.committed:5d}  "
            f"chains[{heights}]  {safety.summary() if safety else ''}"
        )
        if not result.ok:
            failures += 1
            problems = (result.audit.problems if result.audit else []) + (
                safety.problems if safety else []
            )
            for problem in problems:
                print(f"      !! {problem}")

    print()
    if failures:
        print(f"{failures}/{len(results)} adversary scenarios VIOLATED safety")
        return 1
    print(
        f"all {len(results)} adversary scenarios safe: no fork among correct "
        "replicas, balances conserved, at-most-once execution — under replica, "
        "client, and colluding adversaries alike"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
