"""Quickstart: declare a SharPer scenario and run it end to end.

Run with::

    python examples/quickstart.py

One :class:`repro.api.Scenario` describes the paper's crash-only setup
(12 nodes, four clusters of three, Paxos intra-shard, Algorithm 1
cross-shard) with closed-loop clients issuing 20% cross-shard transfers;
``scenario.run()`` owns the whole lifecycle — build, drive, drain,
audit — and returns a :class:`repro.api.ScenarioResult` bundling
throughput, latency, the per-cluster chains, the ledger consistency
audit, and the balance-conservation check.
"""

from __future__ import annotations

from repro import FaultModel, WorkloadConfig
from repro.api import DeploymentSpec, Scenario


def main() -> None:
    # One declarative object: deployment + workload + client mix + duration.
    scenario = Scenario(
        name="quickstart",
        deployment=DeploymentSpec(
            system="sharper",
            fault_model=FaultModel.CRASH,
            num_clusters=4,
            f=1,
        ),
        workload=WorkloadConfig(
            cross_shard_fraction=0.20,
            accounts_per_shard=256,
            num_clients=32,
        ),
        clients=32,
        duration=0.4,
        warmup=0.05,
    )

    # Run it: build, spawn clients, simulate, drain, audit.
    result = scenario.run()

    print("== SharPer quickstart (crash-only, 4 clusters, 20% cross-shard) ==")
    stats = result.stats
    print(f"committed transactions : {stats.committed}")
    print(f"throughput             : {stats.throughput:,.0f} tx/s")
    print(f"average latency        : {stats.avg_latency * 1e3:.2f} ms")
    print(f"  intra-shard          : {stats.avg_latency_intra * 1e3:.2f} ms")
    print(f"  cross-shard          : {stats.avg_latency_cross * 1e3:.2f} ms")

    # The ledger: one chain view per cluster, cross-shard blocks shared
    # between the involved clusters (the DAG of Figure 2).
    print("\nper-cluster chains:")
    for cluster_id, view in sorted(result.system.views().items()):
        cross = len(view.cross_shard_blocks())
        print(f"  cluster p{cluster_id}: {view.height} blocks ({cross} cross-shard)")

    # Safety: total order per shard, cross-shard consistency, union-of-views
    # DAG, and balance conservation — all bundled in the result.
    audit = result.audit
    print(f"\nledger audit           : {'OK' if audit.ok else audit.problems}")
    print(f"balance conserved      : {result.balance_conserved}")


if __name__ == "__main__":
    main()
