"""Quickstart: build a 4-cluster SharPer deployment and run a small workload.

Run with::

    python examples/quickstart.py

It builds the paper's crash-only setup (12 nodes, four clusters of three,
Paxos intra-shard, Algorithm 1 cross-shard), drives it with closed-loop
clients issuing 20% cross-shard transfers, and prints throughput, latency,
the per-cluster chains, and the result of the ledger consistency audit.
"""

from __future__ import annotations

from repro import FaultModel, SharPerSystem, SystemConfig, WorkloadConfig
from repro.common.metrics import MetricsCollector


def main() -> None:
    # 1. Describe the deployment: 4 clusters, crash-only nodes, f = 1.
    config = SystemConfig.build(num_clusters=4, fault_model=FaultModel.CRASH, f=1)

    # 2. Describe the workload: 20% cross-shard transfers over 4 shards.
    workload = WorkloadConfig(
        cross_shard_fraction=0.20,
        accounts_per_shard=256,
        num_clients=32,
    )

    # 3. Build the system and attach closed-loop clients.
    system = SharPerSystem(config, workload)
    metrics = MetricsCollector(warmup=0.05, measure_until=0.4)
    clients = system.spawn_clients(32, metrics)
    system.start_clients(clients)

    # 4. Run 0.4 simulated seconds, then let in-flight transactions finish.
    end = system.sim.run(until=0.4)
    system.drain()

    # 5. Report performance.
    stats = metrics.finalize(end)
    print("== SharPer quickstart (crash-only, 4 clusters, 20% cross-shard) ==")
    print(f"committed transactions : {stats.committed}")
    print(f"throughput             : {stats.throughput:,.0f} tx/s")
    print(f"average latency        : {stats.avg_latency * 1e3:.2f} ms")
    print(f"  intra-shard          : {stats.avg_latency_intra * 1e3:.2f} ms")
    print(f"  cross-shard          : {stats.avg_latency_cross * 1e3:.2f} ms")

    # 6. Inspect the ledger: one chain view per cluster, cross-shard blocks
    #    shared between the involved clusters (the DAG of Figure 2).
    print("\nper-cluster chains:")
    for cluster_id, view in sorted(system.views().items()):
        cross = len(view.cross_shard_blocks())
        print(f"  cluster p{cluster_id}: {view.height} blocks ({cross} cross-shard)")

    # 7. Audit safety: total order per shard, cross-shard consistency,
    #    union-of-views DAG, and balance conservation.
    report = system.audit()
    print(f"\nledger audit           : {'OK' if report.ok else report.problems}")
    print(f"balance conserved      : {system.total_balance() == system.expected_total_balance()}")


if __name__ == "__main__":
    main()
