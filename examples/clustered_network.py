"""Clustered-network optimisation (Section 3.4) and primary fail-over.

Part 1 reproduces the paper's worked example: 23 Byzantine nodes with a
global failure bound f = 3 can only form 2 clusters, but knowing the
per-cloud bounds (group A: 7 nodes with f = 2, group B: 16 nodes with
f = 1) yields 5 clusters — and 5 clusters means more parallelism.  The
grouped deployment is handed to a :class:`repro.api.Scenario` through
:class:`repro.api.DeploymentSpec`'s explicit ``config`` override.

Part 2 declares a :class:`repro.api.FaultSchedule` that crashes a
cluster primary mid-run and shows the view change electing a new primary
while the cluster keeps committing — no manual ``sim.run``/``crash``
interleaving.

Run with::

    python examples/clustered_network.py
"""

from __future__ import annotations

from repro import FaultModel, WorkloadConfig
from repro.api import DeploymentSpec, FaultSchedule, Scenario
from repro.common.config import NodeGroup, ProtocolTuning, plan_clusters
from repro.core.sharding import build_grouped_system, plan_clusters_grouped


def clustered_network_demo() -> None:
    print("== Section 3.4: clustering per cloud instead of per network ==")
    groups = [NodeGroup("cloud-A", num_nodes=7, f=2), NodeGroup("cloud-B", num_nodes=16, f=1)]
    naive = plan_clusters(num_nodes=23, f=3, fault_model=FaultModel.BYZANTINE)
    per_group = plan_clusters_grouped(groups, FaultModel.BYZANTINE)
    print(f"  without group knowledge : |P| = {naive} clusters")
    print(f"  with group knowledge    : {per_group} -> {sum(per_group.values())} clusters")

    config = build_grouped_system(groups, FaultModel.BYZANTINE)
    print(f"  built deployment: {config.num_clusters} clusters over {config.num_nodes} nodes")
    for cluster in config.clusters:
        print(f"    cluster p{cluster.cluster_id}: {cluster.size} nodes, f = {cluster.f}")

    scenario = Scenario(
        name="grouped-clusters",
        deployment=DeploymentSpec(system="sharper", config=config),
        workload=WorkloadConfig(cross_shard_fraction=0.1, accounts_per_shard=128, num_clients=16),
        clients=48,
        duration=0.3,
        warmup=0.05,
    )
    result = scenario.run()
    print(f"  throughput with 5 clusters: {result.throughput:,.0f} tx/s "
          f"(audit {'OK' if result.audit.ok else 'FAILED'})")
    print()


def failover_demo() -> None:
    print("== primary crash and view change, as a declarative fault schedule ==")
    scenario = Scenario(
        name="primary-failover",
        deployment=DeploymentSpec(
            system="sharper",
            fault_model=FaultModel.CRASH,
            num_clusters=2,
            tuning=ProtocolTuning(view_change_timeout=0.05),
        ),
        workload=WorkloadConfig(cross_shard_fraction=0.0, accounts_per_shard=64, num_clients=8),
        clients=4,
        duration=1.0,
        warmup=0.0,
        retry_timeout=0.1,
        faults=FaultSchedule().crash_primary(at=0.05, cluster=0),
    )
    for event in scenario.faults:
        print(f"  scheduled: {event.describe()}")
    result = scenario.run()

    system = result.system
    victim = system.config.clusters[0]
    survivors = [r for r in system.replicas_of(victim.cluster_id) if not r.crashed]
    new_view = max(replica.intra.view for replica in survivors)
    new_primary = victim.primary_for_view(new_view)
    print(f"  cluster p{victim.cluster_id} is now in view {new_view}; new primary is node {new_primary}")
    print(f"  cluster p{victim.cluster_id} chain height: {max(r.chain.height for r in survivors)} blocks")
    print(f"  audit after fail-over: {'OK' if result.audit.ok else 'FAILED'}")


def main() -> None:
    clustered_network_demo()
    failover_demo()


if __name__ == "__main__":
    main()
