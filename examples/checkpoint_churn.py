"""Checkpointing, log compaction, and crash→recover churn (repro.recovery).

Run with::

    python examples/checkpoint_churn.py            # full pair of experiments
    python examples/checkpoint_churn.py --quick    # CI-sized smoke run

Two claims from the recovery subsystem are made executable here:

1. **Bounded memory.**  A fig8-style long run (crash model, 10%
   cross-shard) decides at least ``20 x checkpoint_interval`` slots per
   cluster.  With checkpointing on, the peak per-replica
   ``OrderingLog`` entry count must stay below ``2 x interval`` — memory
   no longer grows with the run — while the identical run with
   checkpointing off holds every slot it ever decided.
2. **Real churn.**  A replica crashes mid-run and recovers after its
   peers have garbage-collected the slots it missed; it state-transfers
   the latest stable checkpoint plus the decided suffix, catches up to
   the cluster's applied height, and serves in later quorums.  The
   cross-replica :class:`repro.adversary.SafetyAuditor` must pass across
   truncation and replay.

The process exits non-zero if any assertion fails, so this file doubles
as the CI ``recovery-smoke`` gate.
"""

from __future__ import annotations

import argparse
import sys

from repro.bench.experiments import churn_scenario, longrun_scenario


def check(condition: bool, label: str) -> bool:
    print(f"  [{'ok' if condition else 'FAIL'}] {label}")
    return condition


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--interval", type=int, default=50,
        help="checkpoint interval in decided slots (default 50)",
    )
    parser.add_argument(
        "--duration", type=float, default=2.0,
        help="simulated seconds for the long run (default 2.0)",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="CI-sized run: shorter long-run window, same assertions",
    )
    args = parser.parse_args(argv)
    interval = args.interval
    duration = 1.0 if args.quick else args.duration
    ok = True

    print(f"== Long run: bounded log with checkpointing on (interval={interval}) ==")
    bounded = longrun_scenario(checkpoint_interval=interval, duration=duration).run()
    bounded.raise_if_failed()
    decided = min(bounded.chain_heights.values())
    recovery = bounded.recovery
    print(f"  committed={bounded.stats.committed} min-height={decided} "
          f"peak-log={recovery.peak_log_entries} stable-checkpoints={recovery.checkpoints_stable}")
    ok &= check(decided >= 20 * interval, f"decided >= 20x interval ({decided} >= {20 * interval})")
    ok &= check(
        recovery.peak_log_entries <= 2 * interval,
        f"peak OrderingLog entries <= 2x interval ({recovery.peak_log_entries} <= {2 * interval})",
    )
    ok &= check(recovery.divergent_checkpoints == 0, "no divergent checkpoint digests")

    print("== Long run: unbounded log with checkpointing off ==")
    unbounded = longrun_scenario(checkpoint_interval=0, duration=duration).run()
    unbounded.raise_if_failed()
    peak_off = unbounded.recovery.peak_log_entries
    print(f"  committed={unbounded.stats.committed} peak-log={peak_off}")
    ok &= check(
        peak_off > 2 * interval,
        f"without checkpointing the log grows with the run ({peak_off} > {2 * interval})",
    )

    print("== Churn: crash -> recover -> state-transfer -> catch up -> serve ==")
    churn = churn_scenario(checkpoint_interval=max(interval // 2, 1))
    result = churn.run()
    result.raise_if_failed()
    node = churn.faults.events[0].node_id
    recovered = result.system.replicas[node]
    peers = [
        replica
        for pid, replica in result.system.replicas.items()
        if replica.cluster_id == recovered.cluster_id and pid != node
    ]
    peer_height = max(replica.chain.height for replica in peers)
    recovery = result.recovery
    print(f"  recovered-height={recovered.chain.height} peer-height={peer_height} "
          f"state-transfers={recovery.state_transfers_completed} "
          f"snapshots={recovery.snapshots_installed}")
    ok &= check(not recovered.crashed, "replica is back up")
    ok &= check(recovery.state_transfers_completed >= 1, "state transfer completed")
    ok &= check(
        recovered.chain.height == peer_height,
        f"recovered replica caught up ({recovered.chain.height} == {peer_height})",
    )
    ok &= check(result.safety is not None and result.safety.ok, "safety audit passed")

    print("ALL CHECKS PASSED" if ok else "CHECKS FAILED")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
