"""Head-to-head comparison: SharPer vs AHL vs APR vs Fast consensus.

Runs the four systems of Figure 6/7 under the same workload and prints a
small table of peak throughput and latency, for both failure models.
Each series is one declarative :class:`repro.api.Scenario` swept across
client counts with :func:`repro.api.run_sweep`; the systems are resolved
by name through the pluggable registry, so a third-party system
registered with :func:`repro.api.register_system` would appear here by
just adding its name.

Run with::

    python examples/compare_systems.py [cross_shard_fraction]
"""

from __future__ import annotations

import sys

from repro import FaultModel, WorkloadConfig
from repro.api import DeploymentSpec, Scenario, run_sweep
from repro.bench.reporting import format_table

LABELS = {
    FaultModel.CRASH: {"sharper": "SharPer", "ahl": "AHL-C", "apr": "APR-C", "fast": "FPaxos"},
    FaultModel.BYZANTINE: {"sharper": "SharPer", "ahl": "AHL-B", "apr": "APR-B", "fast": "FaB"},
}


def compare(fault_model: FaultModel, cross_fraction: float) -> None:
    print(
        f"== {fault_model.value} nodes, {cross_fraction:.0%} cross-shard transactions =="
    )
    rows = []
    for system, label in LABELS[fault_model].items():
        scenario = Scenario(
            name=label,
            deployment=DeploymentSpec(system=system, fault_model=fault_model),
            workload=WorkloadConfig(cross_shard_fraction=cross_fraction, accounts_per_shard=256, num_clients=32),
            duration=0.25,
            warmup=0.05,
            verify=False,
        )
        results = run_sweep(scenario, client_counts=(16, 64, 128))
        peak = max(results, key=lambda result: result.throughput)
        rows.append(
            {
                "system": label,
                "peak_tps": f"{peak.throughput:,.0f}",
                "latency_ms_at_peak": f"{peak.avg_latency_ms:.2f}",
            }
        )
    print(format_table(rows))
    print()


def main() -> None:
    cross_fraction = float(sys.argv[1]) if len(sys.argv) > 1 else 0.2
    compare(FaultModel.CRASH, cross_fraction)
    compare(FaultModel.BYZANTINE, cross_fraction)


if __name__ == "__main__":
    main()
