"""Head-to-head comparison: SharPer vs AHL vs APR vs Fast consensus.

Runs the four systems of Figure 6/7 under the same workload and prints a
small table of peak throughput and latency, for both failure models.

Run with::

    python examples/compare_systems.py [cross_shard_fraction]
"""

from __future__ import annotations

import sys

from repro.bench.harness import ExperimentSpec, run_curve
from repro.bench.reporting import format_table
from repro.common.types import FaultModel

LABELS = {
    FaultModel.CRASH: {"sharper": "SharPer", "ahl": "AHL-C", "apr": "APR-C", "fast": "FPaxos"},
    FaultModel.BYZANTINE: {"sharper": "SharPer", "ahl": "AHL-B", "apr": "APR-B", "fast": "FaB"},
}


def compare(fault_model: FaultModel, cross_fraction: float) -> None:
    print(
        f"== {fault_model.value} nodes, {cross_fraction:.0%} cross-shard transactions =="
    )
    rows = []
    for system, label in LABELS[fault_model].items():
        spec = ExperimentSpec(
            system=system,
            fault_model=fault_model,
            cross_shard_fraction=cross_fraction,
            duration=0.25,
            warmup=0.05,
        )
        curve = run_curve(spec, client_counts=(16, 64, 128), label=label)
        peak = curve.peak()
        rows.append(
            {
                "system": label,
                "peak_tps": f"{peak.throughput:,.0f}",
                "latency_ms_at_peak": f"{peak.latency_ms:.2f}",
            }
        )
    print(format_table(rows))
    print()


def main() -> None:
    cross_fraction = float(sys.argv[1]) if len(sys.argv) > 1 else 0.2
    compare(FaultModel.CRASH, cross_fraction)
    compare(FaultModel.BYZANTINE, cross_fraction)


if __name__ == "__main__":
    main()
