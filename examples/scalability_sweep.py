"""Scalability sweep: SharPer throughput vs. number of clusters (Figure 8).

Runs the 90% intra / 10% cross-shard workload on 2..5 clusters for both
failure models and prints the measured peak throughput, reproducing the
shape of Figure 8 (near-linear scaling with the cluster count).

Run with::

    python examples/scalability_sweep.py
"""

from __future__ import annotations

from repro.bench.harness import ExperimentSpec, run_curve
from repro.common.types import FaultModel


def sweep(fault_model: FaultModel) -> None:
    label = "crash-only (Paxos)" if fault_model is FaultModel.CRASH else "Byzantine (PBFT)"
    print(f"== SharPer scalability, {label}, 10% cross-shard ==")
    baseline = None
    for clusters in (2, 3, 4, 5):
        spec = ExperimentSpec(
            system="sharper",
            fault_model=fault_model,
            num_clusters=clusters,
            cross_shard_fraction=0.1,
            duration=0.25,
            warmup=0.05,
        )
        curve = run_curve(spec, client_counts=(16, 64, 128), label=f"{clusters} clusters")
        peak = curve.peak()
        baseline = baseline or peak.throughput
        print(
            f"  {clusters} clusters: peak {peak.throughput:9,.0f} tx/s "
            f"at {peak.latency_ms:6.2f} ms  (x{peak.throughput / baseline:.2f} vs 2 clusters)"
        )
    print()


def main() -> None:
    sweep(FaultModel.CRASH)
    sweep(FaultModel.BYZANTINE)


if __name__ == "__main__":
    main()
