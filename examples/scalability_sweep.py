"""Scalability sweep: SharPer throughput vs. number of clusters (Figure 8).

Runs the 90% intra / 10% cross-shard workload on 2..5 clusters for both
failure models and prints the measured peak throughput, reproducing the
shape of Figure 8 (near-linear scaling with the cluster count).  Each
cluster count is a :class:`repro.api.Scenario` variation swept across
client counts with :func:`repro.api.run_sweep`.

Run with::

    python examples/scalability_sweep.py
"""

from __future__ import annotations

from repro import FaultModel, WorkloadConfig
from repro.api import DeploymentSpec, Scenario, run_sweep


def sweep(fault_model: FaultModel) -> None:
    label = "crash-only (Paxos)" if fault_model is FaultModel.CRASH else "Byzantine (PBFT)"
    print(f"== SharPer scalability, {label}, 10% cross-shard ==")
    baseline = None
    for clusters in (2, 3, 4, 5):
        scenario = Scenario(
            name=f"{clusters} clusters",
            deployment=DeploymentSpec(
                system="sharper", fault_model=fault_model, num_clusters=clusters
            ),
            workload=WorkloadConfig(
                cross_shard_fraction=0.1, accounts_per_shard=256, num_clients=32
            ),
            duration=0.25,
            warmup=0.05,
            verify=False,
        )
        results = run_sweep(scenario, client_counts=(16, 64, 128))
        peak = max(results, key=lambda result: result.throughput)
        baseline = baseline or peak.throughput
        print(
            f"  {clusters} clusters: peak {peak.throughput:9,.0f} tx/s "
            f"at {peak.avg_latency_ms:6.2f} ms  (x{peak.throughput / baseline:.2f} vs 2 clusters)"
        )
    print()


def main() -> None:
    sweep(FaultModel.CRASH)
    sweep(FaultModel.BYZANTINE)


if __name__ == "__main__":
    main()
